//! Figure 8 (bottom) — bandwidth and scheduling-loop latency.
//!
//! Compares, relative to the 6-wide/1-cycle-scheduler baseline:
//! the 6-wide machine with integer-memory mini-graphs; a 4-wide machine
//! (fetch/rename/retire and execute all narrowed, 1 load port) with and
//! without mini-graphs; a 4-wide front end with 6-wide execution (2 load
//! ports) with and without mini-graphs; and a 2-cycle (pipelined)
//! scheduler with and without mini-graphs.

use mg_bench::{apply_quick, by_suite, gmean, quick_mode, speedup, Prep, Table};
use mg_core::{Policy, RewriteStyle};
use mg_uarch::SimConfig;
use mg_workloads::Input;

fn four_wide() -> SimConfig {
    let mut c = SimConfig::baseline().with_front_width(4);
    c.issue_width = 4;
    c.load_ports = 1;
    c
}

fn four_wide_six_exec() -> SimConfig {
    // "can execute 6 instructions per cycle, including 2 loads".
    SimConfig::baseline().with_front_width(4)
}

fn two_cycle_sched() -> SimConfig {
    let mut c = SimConfig::baseline();
    c.sched_loop = 2;
    c
}

fn with_mg(mut cfg: SimConfig) -> SimConfig {
    cfg.mg = mg_uarch::MgSupport::IntegerMemory;
    cfg
}

fn main() {
    let quick = quick_mode();
    let preps = Prep::all(&Input::reference());
    let mut ref_cfg = SimConfig::baseline();
    apply_quick(&mut ref_cfg, quick);

    let variants: Vec<(&str, SimConfig)> = vec![
        ("6w", SimConfig::baseline()),
        ("6w+mg", with_mg(SimConfig::baseline())),
        ("4w", four_wide()),
        ("4w+mg", with_mg(four_wide())),
        ("4w6x", four_wide_six_exec()),
        ("4w6x+mg", with_mg(four_wide_six_exec())),
        ("2cyc", two_cycle_sched()),
        ("2cyc+mg", with_mg(two_cycle_sched())),
    ];

    println!("== Figure 8 (bottom): bandwidth / scheduler-latency reductions ==");
    println!("   (all numbers relative to the 6-wide, 1-cycle-scheduler baseline)");
    for (suite, members) in by_suite(&preps) {
        println!("\n-- {suite} --");
        let names: Vec<&str> = variants.iter().map(|(n, _)| *n).collect();
        let mut header = vec!["benchmark"];
        header.extend(names.iter());
        let mut t = Table::new(&header);
        let mut means = vec![Vec::new(); variants.len()];
        for p in &members {
            let reference = p.run_baseline(&ref_cfg);
            let sel = p.select(&Policy::integer_memory());
            let mut cells = vec![p.name.to_string()];
            for (vi, (name, cfg)) in variants.iter().enumerate() {
                let mut cfg = cfg.clone();
                apply_quick(&mut cfg, quick);
                let s = if name.ends_with("+mg") {
                    p.run_selection(&sel, RewriteStyle::NopPadded, &cfg)
                } else {
                    p.run_baseline(&cfg)
                };
                let x = speedup(&reference, &s);
                means[vi].push(x);
                cells.push(format!("{x:.3}"));
            }
            t.row(cells);
        }
        print!("{}", t.render());
        let summary: Vec<String> = variants
            .iter()
            .zip(&means)
            .map(|((n, _), xs)| format!("{n} {:.3}", gmean(xs)))
            .collect();
        println!("gmean: {}", summary.join("  "));
    }
}
