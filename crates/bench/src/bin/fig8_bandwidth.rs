//! Deprecated alias for `mg run fig8_bandwidth` (byte-identical output);
//! kept for one release. See [`mg_bench::figures::fig8_bandwidth`].

fn main() {
    mg_bench::cli::legacy_main("fig8_bandwidth");
}
