//! Figure 8 (bottom) — bandwidth and scheduling-loop latency.
//!
//! Compares, relative to the 6-wide/1-cycle-scheduler baseline:
//! the 6-wide machine with integer-memory mini-graphs; a 4-wide machine
//! (fetch/rename/retire and execute all narrowed, 1 load port) with and
//! without mini-graphs; a 4-wide front end with 6-wide execution (2 load
//! ports) with and without mini-graphs; and a 2-cycle (pipelined)
//! scheduler with and without mini-graphs.

use mg_bench::{gmean, CliArgs, Run, Table};
use mg_core::{Policy, RewriteStyle};
use mg_uarch::SimConfig;

fn four_wide() -> SimConfig {
    let mut c = SimConfig::baseline().with_front_width(4);
    c.issue_width = 4;
    c.load_ports = 1;
    c
}

fn four_wide_six_exec() -> SimConfig {
    // "can execute 6 instructions per cycle, including 2 loads".
    SimConfig::baseline().with_front_width(4)
}

fn two_cycle_sched() -> SimConfig {
    let mut c = SimConfig::baseline();
    c.sched_loop = 2;
    c
}

fn with_mg(mut cfg: SimConfig) -> SimConfig {
    cfg.mg = mg_uarch::MgSupport::IntegerMemory;
    cfg
}

fn main() {
    let engine = CliArgs::parse().engine().build();

    let mg = |cfg: SimConfig, label: &str| {
        Run::mini_graph(Policy::integer_memory(), RewriteStyle::NopPadded, with_mg(cfg))
            .label(label)
    };
    let runs = [
        Run::baseline(SimConfig::baseline()).label("6w"),
        mg(SimConfig::baseline(), "6w+mg"),
        Run::baseline(four_wide()).label("4w"),
        mg(four_wide(), "4w+mg"),
        Run::baseline(four_wide_six_exec()).label("4w6x"),
        mg(four_wide_six_exec(), "4w6x+mg"),
        Run::baseline(two_cycle_sched()).label("2cyc"),
        mg(two_cycle_sched(), "2cyc+mg"),
    ];
    let matrix = engine.run(&runs);

    println!("== Figure 8 (bottom): bandwidth / scheduler-latency reductions ==");
    println!("   (all numbers relative to the 6-wide, 1-cycle-scheduler baseline)");
    for (suite, members) in matrix.by_suite() {
        println!("\n-- {suite} --");
        let mut header = vec!["benchmark"];
        header.extend(matrix.labels.iter().map(String::as_str));
        let mut t = Table::new(&header);
        let mut means = vec![Vec::new(); runs.len()];
        for row in &members {
            let mut cells = vec![row.prep.name.clone()];
            for (vi, sink) in means.iter_mut().enumerate() {
                let x = row.speedup_over(0, vi);
                sink.push(x);
                cells.push(format!("{x:.3}"));
            }
            t.row(cells);
        }
        print!("{}", t.render());
        let summary: Vec<String> = matrix
            .labels
            .iter()
            .zip(&means)
            .map(|(n, xs)| format!("{n} {:.3}", gmean(xs)))
            .collect();
        println!("gmean: {}", summary.join("  "));
    }
}
