//! Figure 7 — isolating serialization effects.
//!
//! Re-runs the paper's ablation: integer mini-graphs with and without
//! externally serial graphs, internally parallel graphs, and both; and
//! integer-memory mini-graphs additionally without replay-vulnerable
//! graphs (loads in non-terminal positions). The paper uses six
//! benchmarks; we use our analogues of the same behavioural classes plus
//! the suite means. With `--best`, also reports the per-benchmark best
//! policy combination (§6.2: average gains rise to 3/14/9/11%).

use mg_bench::experiments::{fig7_int_policies, fig7_runs, FIG7_FOCUS};
use mg_bench::{gmean, CliArgs, Table};

fn main() {
    let args = CliArgs::parse();
    // The paper's six focus benchmarks, by behavioural analogue. Only
    // `--best` (the §6.2 suite sweep) needs every workload; the default
    // report simulates just the focus set.
    let focus = FIG7_FOCUS;
    let mut builder = args.engine();
    if !args.best {
        builder = builder.workloads(&focus);
    }
    let engine = builder.build();

    // One matrix serves both reports: baseline + all seven ablations.
    let runs = fig7_runs();
    let matrix = engine.run(&runs);

    println!("== Figure 7: serialization and replay ablation (speedup over baseline) ==");
    let mut t = Table::new(&[
        "benchmark",
        "int",
        "-ext",
        "-int",
        "-both",
        "intmem",
        "-serial",
        "-ser-rep",
    ]);
    for name in focus {
        let row = matrix.row(name).expect("focus benchmark exists");
        let mut cells = vec![name.to_string()];
        for ri in 1..runs.len() {
            cells.push(format!("{:.3}", row.speedup_over(0, ri)));
        }
        t.row(cells);
    }
    print!("{}", t.render());

    if args.best {
        println!("\n== §6.2: best policy combination per benchmark (suite gmeans) ==");
        let unres_col = 1 + fig7_int_policies().len(); // the unrestricted "intmem" run
        let mut table = Table::new(&["suite", "unrestricted", "best-per-bench"]);
        for (suite, members) in matrix.by_suite() {
            let mut unrestricted = Vec::new();
            let mut best = Vec::new();
            for row in &members {
                unrestricted.push(row.speedup_over(0, unres_col));
                best.push(
                    (1..runs.len()).map(|ri| row.speedup_over(0, ri)).fold(f64::MIN, f64::max),
                );
            }
            table.row(vec![
                suite.to_string(),
                format!("{:.3}", gmean(&unrestricted)),
                format!("{:.3}", gmean(&best)),
            ]);
        }
        print!("{}", table.render());
    }
}
