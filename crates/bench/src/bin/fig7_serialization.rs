//! Figure 7 — isolating serialization effects.
//!
//! Re-runs the paper's ablation: integer mini-graphs with and without
//! externally serial graphs, internally parallel graphs, and both; and
//! integer-memory mini-graphs additionally without replay-vulnerable
//! graphs (loads in non-terminal positions). The paper uses six
//! benchmarks; we use our analogues of the same behavioural classes plus
//! the suite means. With `--best`, also reports the per-benchmark best
//! policy combination (§6.2: average gains rise to 3/14/9/11%).

use mg_bench::{apply_quick, by_suite, gmean, quick_mode, speedup, Prep, Table};
use mg_core::{Policy, RewriteStyle};
use mg_uarch::SimConfig;
use mg_workloads::Input;

fn int_policies() -> Vec<(&'static str, Policy)> {
    vec![
        ("int", Policy::integer()),
        (
            "int -ext",
            Policy { allow_external_serial: false, ..Policy::integer() },
        ),
        (
            "int -int",
            Policy { allow_internal_parallel: false, ..Policy::integer() },
        ),
        (
            "int -both",
            Policy {
                allow_external_serial: false,
                allow_internal_parallel: false,
                ..Policy::integer()
            },
        ),
    ]
}

fn mem_policies() -> Vec<(&'static str, Policy)> {
    vec![
        ("intmem", Policy::integer_memory()),
        (
            "intmem -serial",
            Policy {
                allow_external_serial: false,
                allow_internal_parallel: false,
                ..Policy::integer_memory()
            },
        ),
        (
            "intmem -serial -replay",
            Policy {
                allow_external_serial: false,
                allow_internal_parallel: false,
                allow_interior_loads: false,
                ..Policy::integer_memory()
            },
        ),
    ]
}

fn main() {
    let quick = quick_mode();
    let best_mode = std::env::args().any(|a| a == "--best");
    // The paper's six focus benchmarks, by behavioural analogue.
    let focus = ["gsm.toast", "mpeg2.idct", "reed.enc", "mcf.netw", "sha.rounds", "adpcm.enc"];
    let preps = Prep::all(&Input::reference());
    let mut base_cfg = SimConfig::baseline();
    apply_quick(&mut base_cfg, quick);

    println!("== Figure 7: serialization and replay ablation (speedup over baseline) ==");
    let mut t = Table::new(&[
        "benchmark",
        "int",
        "-ext",
        "-int",
        "-both",
        "intmem",
        "-serial",
        "-ser-rep",
    ]);
    for name in focus {
        let p = preps.iter().find(|p| p.name == name).expect("focus benchmark exists");
        let base = p.run_baseline(&base_cfg);
        let mut cells = vec![p.name.to_string()];
        for (_, policy) in int_policies() {
            let sel = p.select(&policy);
            let mut cfg = SimConfig::mg_integer();
            apply_quick(&mut cfg, quick);
            let s = p.run_selection(&sel, RewriteStyle::NopPadded, &cfg);
            cells.push(format!("{:.3}", speedup(&base, &s)));
        }
        for (_, policy) in mem_policies() {
            let sel = p.select(&policy);
            let mut cfg = SimConfig::mg_integer_memory();
            apply_quick(&mut cfg, quick);
            let s = p.run_selection(&sel, RewriteStyle::NopPadded, &cfg);
            cells.push(format!("{:.3}", speedup(&base, &s)));
        }
        t.row(cells);
    }
    print!("{}", t.render());

    if best_mode {
        println!("\n== §6.2: best policy combination per benchmark (suite gmeans) ==");
        let mut table = Table::new(&["suite", "unrestricted", "best-per-bench"]);
        for (suite, members) in by_suite(&preps) {
            let mut unrestricted = Vec::new();
            let mut best = Vec::new();
            for p in &members {
                let base = p.run_baseline(&base_cfg);
                let mut all_policies = int_policies();
                all_policies.extend(mem_policies());
                let mut best_x = f64::MIN;
                let mut unres_x = 1.0;
                for (name, policy) in &all_policies {
                    let is_mem = name.starts_with("intmem");
                    let mut cfg = if is_mem {
                        SimConfig::mg_integer_memory()
                    } else {
                        SimConfig::mg_integer()
                    };
                    apply_quick(&mut cfg, quick);
                    let sel = p.select(policy);
                    let s = p.run_selection(&sel, RewriteStyle::NopPadded, &cfg);
                    let x = speedup(&base, &s);
                    if *name == "intmem" {
                        unres_x = x;
                    }
                    best_x = best_x.max(x);
                }
                unrestricted.push(unres_x);
                best.push(best_x);
            }
            table.row(vec![
                suite.to_string(),
                format!("{:.3}", gmean(&unrestricted)),
                format!("{:.3}", gmean(&best)),
            ]);
        }
        print!("{}", table.render());
    }
}
