//! Deprecated alias for `mg run fig7` (byte-identical output, including
//! `--best`); kept for one release. See [`mg_bench::figures::fig7`].

fn main() {
    mg_bench::cli::legacy_main("fig7");
}
