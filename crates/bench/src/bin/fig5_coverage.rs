//! Figure 5 — mini-graph coverage.
//!
//! Regenerates all three panels: application-specific integer coverage
//! (top), application-specific integer-memory coverage (middle), and
//! domain-specific integer-memory coverage (bottom), sweeping the MGT
//! capacity (32/128/512/2048 entries) and maximum mini-graph size
//! (2/3/4/8 instructions). Coverage is the paper's metric: the fraction of
//! dynamic instructions removed from the pipeline, `Σ (n-1)·f / total`.

use mg_bench::{by_suite, gmean, Prep, Table};
use mg_core::{select_domain, Policy};
use mg_workloads::Input;

const CAPACITIES: [usize; 4] = [32, 128, 512, 2048];
const SIZES: [usize; 4] = [2, 3, 4, 8];

fn panel(preps: &[Prep], base: Policy, title: &str) {
    println!("\n== Figure 5 ({title}): coverage % by MGT entries (rows) x max size (cols) ==");
    for (suite, members) in by_suite(preps) {
        println!("\n-- {suite} --");
        let mut t = Table::new(&["benchmark", "entries", "sz2", "sz3", "sz4", "sz8"]);
        for p in &members {
            for cap in CAPACITIES {
                let mut cells = vec![p.name.to_string(), cap.to_string()];
                for sz in SIZES {
                    let policy = base.clone().with_capacity(cap).with_max_size(sz);
                    let sel = p.select(&policy);
                    cells.push(format!("{:.1}", 100.0 * sel.coverage(p.total_dyn)));
                }
                t.row(cells);
            }
        }
        // Suite mean at the paper's headline point (512 entries, size 4).
        let cov: Vec<f64> = members
            .iter()
            .map(|p| {
                let policy = base.clone().with_capacity(512).with_max_size(4);
                p.select(&policy).coverage(p.total_dyn).max(1e-9)
            })
            .collect();
        print!("{}", t.render());
        println!("suite mean @512/sz4: {:.1}%", 100.0 * gmean(&cov));
    }
}

fn domain_panel(preps: &[Prep]) {
    println!("\n== Figure 5 (bottom): domain-specific integer-memory coverage ==");
    for (suite, members) in by_suite(preps) {
        println!("\n-- {suite} (one shared MGT per suite) --");
        let mut t = Table::new(&["entries", "mean-cov%", "templates"]);
        for cap in CAPACITIES {
            let policy = Policy::integer_memory().with_capacity(cap).with_max_size(4);
            let per_prog: Vec<Vec<mg_core::MiniGraph>> =
                members.iter().map(|p| p.candidates.clone()).collect();
            let (sels, catalog) = select_domain(&per_prog, &policy);
            let cov: Vec<f64> = sels
                .iter()
                .zip(&members)
                .map(|(s, p)| s.coverage(p.total_dyn).max(1e-9))
                .collect();
            t.row(vec![
                cap.to_string(),
                format!("{:.1}", 100.0 * gmean(&cov)),
                catalog.len().to_string(),
            ]);
        }
        print!("{}", t.render());
    }
}

fn main() {
    let preps = Prep::all(&Input::reference());
    panel(&preps, Policy::integer(), "top: application-specific integer");
    panel(&preps, Policy::integer_memory(), "middle: application-specific integer-memory");
    domain_panel(&preps);
}
