//! Deprecated alias for `mg run fig5` (byte-identical output); kept for
//! one release. See [`mg_bench::figures::fig5`].

fn main() {
    mg_bench::cli::legacy_main("fig5");
}
