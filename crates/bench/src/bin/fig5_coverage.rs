//! Figure 5 — mini-graph coverage.
//!
//! Regenerates all three panels: application-specific integer coverage
//! (top), application-specific integer-memory coverage (middle), and
//! domain-specific integer-memory coverage (bottom), sweeping the MGT
//! capacity (32/128/512/2048 entries) and maximum mini-graph size
//! (2/3/4/8 instructions). Coverage is the paper's metric: the fraction of
//! dynamic instructions removed from the pipeline, `Σ (n-1)·f / total`.
//!
//! Pure selection (no timing simulation): the engine's parallel `map`
//! sweeps the per-workload policy grid across threads.

use mg_bench::{by_suite, gmean, CliArgs, Engine, Prep, Table};
use mg_core::{select_domain, Policy};

const CAPACITIES: [usize; 4] = [32, 128, 512, 2048];
const SIZES: [usize; 4] = [2, 3, 4, 8];

fn panel(engine: &Engine, base: &Policy, title: &str) {
    println!("\n== Figure 5 ({title}): coverage % by MGT entries (rows) x max size (cols) ==");
    // One grid of coverages per workload, computed in parallel.
    let grids: Vec<Vec<f64>> = engine.map(|p| {
        let mut grid = Vec::with_capacity(CAPACITIES.len() * SIZES.len());
        for cap in CAPACITIES {
            for sz in SIZES {
                let policy = base.clone().with_capacity(cap).with_max_size(sz);
                grid.push(p.select(&policy).coverage(p.total_dyn));
            }
        }
        grid
    });
    let preps = engine.preps();
    for (suite, members) in by_suite(preps) {
        println!("\n-- {suite} --");
        let mut t = Table::new(&["benchmark", "entries", "sz2", "sz3", "sz4", "sz8"]);
        let mut headline = Vec::new();
        for p in &members {
            let wi = preps.iter().position(|q| q.name == p.name).expect("member of engine");
            for (ci, cap) in CAPACITIES.iter().enumerate() {
                let mut cells = vec![p.name.clone(), cap.to_string()];
                for si in 0..SIZES.len() {
                    cells.push(format!("{:.1}", 100.0 * grids[wi][ci * SIZES.len() + si]));
                }
                t.row(cells);
            }
            // Suite mean at the paper's headline point (512 entries, size 4).
            let (ci, si) = (2, 2);
            headline.push(grids[wi][ci * SIZES.len() + si].max(1e-9));
        }
        print!("{}", t.render());
        println!("suite mean @512/sz4: {:.1}%", 100.0 * gmean(&headline));
    }
}

fn domain_panel(engine: &Engine) {
    println!("\n== Figure 5 (bottom): domain-specific integer-memory coverage ==");
    for (suite, members) in by_suite(engine.preps()) {
        println!("\n-- {suite} (one shared MGT per suite) --");
        let mut t = Table::new(&["entries", "mean-cov%", "templates"]);
        for cap in CAPACITIES {
            let policy = Policy::integer_memory().with_capacity(cap).with_max_size(4);
            let per_prog: Vec<Vec<mg_core::MiniGraph>> =
                members.iter().map(|p| p.candidates.clone()).collect();
            let (sels, catalog) = select_domain(&per_prog, &policy);
            let cov: Vec<f64> = sels
                .iter()
                .zip(&members)
                .map(|(s, p): (_, &&Prep)| s.coverage(p.total_dyn).max(1e-9))
                .collect();
            t.row(vec![
                cap.to_string(),
                format!("{:.1}", 100.0 * gmean(&cov)),
                catalog.len().to_string(),
            ]);
        }
        print!("{}", t.render());
    }
}

fn main() {
    let engine = CliArgs::parse().engine().build();
    panel(&engine, &Policy::integer(), "top: application-specific integer");
    panel(&engine, &Policy::integer_memory(), "middle: application-specific integer-memory");
    domain_panel(&engine);
}
