//! Report builders for every experiment in the CLI registry.
//!
//! Each function here is the ported `main` of one legacy per-figure
//! binary, producing a structured [`Report`] instead of printing. The
//! ports are line-for-line: the text rendering of each report is
//! byte-identical to the original binary's stdout (the binaries are now
//! shims over these builders, so identity holds by construction — and the
//! golden outputs captured before the port verified it once by diff).
//!
//! The paper sections and modeling notes live in the module docs of the
//! original binaries' history and in `EXPERIMENTS.md`; the run matrices
//! are shared with [`crate::experiments`].

use crate::cli::{Report, RunArgs, TableBlock};
use crate::experiments::{
    fig5_selection_sweep, fig6_runs, fig7_int_policies, fig7_runs, fig8_bandwidth_runs,
    fig8_regfile_runs, icache_policy, icache_runs, iq_capacity_runs, FIG5_CAPACITIES,
    FIG5_SIZES, FIG7_FOCUS, IQ_SIZES, REGFILE_SIZES,
};
use mg_core::{select, select_domain, MiniGraph, Policy, RewriteStyle};
use mg_harness::{by_suite, gmean, Engine, Prep, PrepCache, Run};
use mg_isa::{MgTemplate, Opcode, TmplInst, TmplOperand};
use mg_workloads::Input;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Figure 5 — mini-graph coverage: all three panels (application-specific
/// integer, application-specific integer-memory, domain-specific).
pub fn fig5(args: &RunArgs) -> Report {
    let engine = args.engine().build();
    let mut r = Report::new("fig5");
    fig5_panel(&mut r, &engine, &Policy::integer(), "top: application-specific integer");
    fig5_panel(
        &mut r,
        &engine,
        &Policy::integer_memory(),
        "middle: application-specific integer-memory",
    );
    fig5_domain_panel(&mut r, &engine);
    r
}

fn fig5_panel(r: &mut Report, engine: &Engine, base: &Policy, title: &str) {
    r.blank_then(format!(
        "== Figure 5 ({title}): coverage % by MGT entries (rows) x max size (cols) =="
    ));
    // One grid of coverages per workload, computed in parallel.
    let grids: Vec<Vec<f64>> = engine.map(|p| {
        let mut grid = Vec::with_capacity(FIG5_CAPACITIES.len() * FIG5_SIZES.len());
        for cap in FIG5_CAPACITIES {
            for sz in FIG5_SIZES {
                let policy = base.clone().with_capacity(cap).with_max_size(sz);
                grid.push(p.select(&policy).coverage(p.total_dyn));
            }
        }
        grid
    });
    let preps = engine.preps();
    for (suite, members) in by_suite(preps) {
        r.blank_then(format!("-- {suite} --"));
        let mut t = TableBlock::new(
            format!("fig5.{title}.{suite}"),
            &["benchmark", "entries", "sz2", "sz3", "sz4", "sz8"],
        );
        let mut headline = Vec::new();
        for p in &members {
            let wi = preps.iter().position(|q| q.name == p.name).expect("member of engine");
            for (ci, cap) in FIG5_CAPACITIES.iter().enumerate() {
                let mut cells = vec![p.name.clone(), cap.to_string()];
                for si in 0..FIG5_SIZES.len() {
                    cells.push(format!("{:.1}", 100.0 * grids[wi][ci * FIG5_SIZES.len() + si]));
                }
                t.row(cells);
            }
            // Suite mean at the paper's headline point (512 entries, size 4).
            let (ci, si) = (2, 2);
            headline.push(grids[wi][ci * FIG5_SIZES.len() + si].max(1e-9));
        }
        r.table(t);
        r.line(format!("suite mean @512/sz4: {:.1}%", 100.0 * gmean(&headline)));
    }
}

fn fig5_domain_panel(r: &mut Report, engine: &Engine) {
    r.blank_then("== Figure 5 (bottom): domain-specific integer-memory coverage ==");
    for (suite, members) in by_suite(engine.preps()) {
        r.blank_then(format!("-- {suite} (one shared MGT per suite) --"));
        let mut t = TableBlock::new(
            format!("fig5.domain.{suite}"),
            &["entries", "mean-cov%", "templates"],
        );
        for cap in FIG5_CAPACITIES {
            let policy = Policy::integer_memory().with_capacity(cap).with_max_size(4);
            let per_prog: Vec<Vec<MiniGraph>> =
                members.iter().map(|p| p.candidates.clone()).collect();
            let (sels, catalog) = select_domain(&per_prog, &policy);
            let cov: Vec<f64> = sels
                .iter()
                .zip(&members)
                .map(|(s, p): (_, &&Prep)| s.coverage(p.total_dyn).max(1e-9))
                .collect();
            t.row(vec![
                cap.to_string(),
                format!("{:.1}", 100.0 * gmean(&cov)),
                catalog.len().to_string(),
            ]);
        }
        r.table(t);
    }
}

/// Figure 6 — performance of mini-graph processing.
pub fn fig6(args: &RunArgs) -> Report {
    let engine = args.engine().build();
    let matrix = engine.run(&fig6_runs());
    let mut r = Report::new("fig6");
    r.line("== Figure 6: speedup over 6-wide baseline (512-entry MGT, max size 4) ==");
    for (suite, members) in matrix.by_suite() {
        r.blank_then(format!("-- {suite} --"));
        let mut t = TableBlock::new(
            format!("fig6.{suite}"),
            &["benchmark", "baseIPC", "int", "int+coll", "intmem", "intmem+coll", "cov%"],
        );
        let mut sp = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for row in &members {
            let p = &row.prep;
            let mut cells = vec![p.name.clone(), format!("{:.2}", row.stats[0].ipc())];
            for (i, sink) in sp.iter_mut().enumerate() {
                let x = row.speedup_over(0, i + 1);
                sink.push(x);
                cells.push(format!("{x:.3}"));
            }
            let cov = p.select(&Policy::integer_memory()).coverage(p.total_dyn);
            cells.push(format!("{:.1}", 100.0 * cov));
            t.row(cells);
        }
        r.table(t);
        r.line(format!(
            "gmean speedups: int {:.3}  int+coll {:.3}  intmem {:.3}  intmem+coll {:.3}",
            gmean(&sp[0]),
            gmean(&sp[1]),
            gmean(&sp[2]),
            gmean(&sp[3]),
        ));
    }
    r
}

/// Figure 7 — isolating serialization effects (`--best` adds §6.2).
pub fn fig7(args: &RunArgs) -> Report {
    // The paper's six focus benchmarks, by behavioural analogue. Only
    // `--best` (the §6.2 suite sweep) needs every workload; the default
    // report simulates just the focus set.
    let focus = FIG7_FOCUS;
    let mut builder = args.engine();
    if !args.best {
        builder = builder.workloads(&focus);
    }
    let engine = builder.build();

    // One matrix serves both reports: baseline + all seven ablations.
    let runs = fig7_runs();
    let matrix = engine.run(&runs);

    let mut r = Report::new("fig7");
    r.line("== Figure 7: serialization and replay ablation (speedup over baseline) ==");
    let mut t = TableBlock::new(
        "fig7.ablation",
        &["benchmark", "int", "-ext", "-int", "-both", "intmem", "-serial", "-ser-rep"],
    );
    for name in focus {
        let row = matrix.row(name).expect("focus benchmark exists");
        let mut cells = vec![name.to_string()];
        for ri in 1..runs.len() {
            cells.push(format!("{:.3}", row.speedup_over(0, ri)));
        }
        t.row(cells);
    }
    r.table(t);

    if args.best {
        r.blank_then("== §6.2: best policy combination per benchmark (suite gmeans) ==");
        let unres_col = 1 + fig7_int_policies().len(); // the unrestricted "intmem" run
        let mut table =
            TableBlock::new("fig7.best", &["suite", "unrestricted", "best-per-bench"]);
        for (suite, members) in matrix.by_suite() {
            let mut unrestricted = Vec::new();
            let mut best = Vec::new();
            for row in &members {
                unrestricted.push(row.speedup_over(0, unres_col));
                best.push(
                    (1..runs.len()).map(|ri| row.speedup_over(0, ri)).fold(f64::MIN, f64::max),
                );
            }
            table.row(vec![
                suite.to_string(),
                format!("{:.3}", gmean(&unrestricted)),
                format!("{:.3}", gmean(&best)),
            ]);
        }
        r.table(table);
    }
    r
}

/// Figure 8 (top) — capacity: physical register file size.
pub fn fig8_regfile(args: &RunArgs) -> Report {
    let engine = args.engine().build();
    // Column 0 is the reference; then (baseline, int, intmem) per size.
    let matrix = engine.run(&fig8_regfile_runs());
    let mut r = Report::new("fig8_regfile");
    r.line("== Figure 8 (top): performance vs physical register file size ==");
    r.line("   (all numbers relative to the 164-register baseline)");
    for (suite, members) in matrix.by_suite() {
        r.blank_then(format!("-- {suite} --"));
        let mut t = TableBlock::new(
            format!("fig8_regfile.{suite}"),
            &["benchmark", "regs", "baseline", "int", "intmem"],
        );
        // Per-size accumulators: (regs, baseline, int, intmem speedups).
        type SizeMeans = (usize, Vec<f64>, Vec<f64>, Vec<f64>);
        let mut means: Vec<SizeMeans> =
            REGFILE_SIZES.iter().map(|&r| (r, Vec::new(), Vec::new(), Vec::new())).collect();
        for row in &members {
            for (ri, &regs) in REGFILE_SIZES.iter().enumerate() {
                let b = row.speedup_over(0, 1 + 3 * ri);
                let i = row.speedup_over(0, 2 + 3 * ri);
                let m = row.speedup_over(0, 3 + 3 * ri);
                means[ri].1.push(b);
                means[ri].2.push(i);
                means[ri].3.push(m);
                t.row(vec![
                    row.prep.name.clone(),
                    regs.to_string(),
                    format!("{b:.3}"),
                    format!("{i:.3}"),
                    format!("{m:.3}"),
                ]);
            }
        }
        r.table(t);
        for (regs, b, i, m) in &means {
            r.line(format!(
                "gmean @{regs}: baseline {:.3}  int {:.3}  intmem {:.3}",
                gmean(b),
                gmean(i),
                gmean(m)
            ));
        }
    }
    r
}

/// Figure 8 (bottom) — bandwidth and scheduling-loop latency.
pub fn fig8_bandwidth(args: &RunArgs) -> Report {
    let engine = args.engine().build();
    let runs = fig8_bandwidth_runs();
    let matrix = engine.run(&runs);
    let mut r = Report::new("fig8_bandwidth");
    r.line("== Figure 8 (bottom): bandwidth / scheduler-latency reductions ==");
    r.line("   (all numbers relative to the 6-wide, 1-cycle-scheduler baseline)");
    for (suite, members) in matrix.by_suite() {
        r.blank_then(format!("-- {suite} --"));
        let mut header = vec!["benchmark"];
        header.extend(matrix.labels.iter().map(String::as_str));
        let mut t = TableBlock::new(format!("fig8_bandwidth.{suite}"), &header);
        let mut means = vec![Vec::new(); runs.len()];
        for row in &members {
            let mut cells = vec![row.prep.name.clone()];
            for (vi, sink) in means.iter_mut().enumerate() {
                let x = row.speedup_over(0, vi);
                sink.push(x);
                cells.push(format!("{x:.3}"));
            }
            t.row(cells);
        }
        r.table(t);
        let summary: Vec<String> = matrix
            .labels
            .iter()
            .zip(&means)
            .map(|(n, xs)| format!("{n} {:.3}", gmean(xs)))
            .collect();
        r.line(format!("gmean: {}", summary.join("  ")));
    }
    r
}

/// Realized coverage on the test input of a selection trained on the
/// training input: credit each chosen instance with its anchor block's
/// frequency in the test profile (both preps carry their profiles).
fn cross_coverage(trained: &Prep, test: &Prep, policy: &Policy) -> (f64, f64) {
    let sel = trained.select(policy);
    let mut realized = 0u64;
    for c in &sel.chosen {
        let block = test.cfg.block_of(c.graph.anchor).expect("anchor is in a block");
        realized += (c.graph.size() as u64 - 1) * test.prof.block_count(block);
    }
    let cross = realized as f64 / test.prof.total as f64;
    // Native coverage on the test input (selection trained on test).
    let native = test.select(policy).coverage(test.total_dyn);
    (cross, native)
}

/// §6.1 — intra-application input-data robustness.
pub fn robustness(args: &RunArgs) -> Report {
    let mut r = Report::new("robustness");
    r.line("== §6.1: coverage robustness across input data sets ==");
    r.line("   (trained on reference input, evaluated on alternative input)");
    // Two engines: identical workload order, different inputs.
    let trained = args.engine().input(Input::reference()).build();
    let test = args.engine().input(Input::alternative()).build();
    let policy = Policy::integer_memory();

    for ((suite, trained_members), (_, test_members)) in
        trained.by_suite().into_iter().zip(test.by_suite())
    {
        r.blank_then(format!("-- {suite} --"));
        let mut t = TableBlock::new(
            format!("robustness.{suite}"),
            &["benchmark", "native%", "cross%", "relative"],
        );
        let mut rels = Vec::new();
        for (tr, te) in trained_members.iter().zip(&test_members) {
            assert_eq!(tr.name, te.name, "engines registered in the same order");
            let (cross, native) = cross_coverage(tr, te, &policy);
            let rel = if native > 0.0 { cross / native } else { 1.0 };
            rels.push(rel.max(1e-9));
            t.row(vec![
                tr.name.clone(),
                format!("{:.1}", 100.0 * native),
                format!("{:.1}", 100.0 * cross),
                format!("{rel:.2}"),
            ]);
        }
        r.table(t);
        r.line(format!("suite gmean retention: {:.2}", gmean(&rels)));
    }
    r
}

/// §6.2 — instruction-cache effects of code compression.
pub fn icache(args: &RunArgs) -> Report {
    let engine = args.engine().build();
    let policy = icache_policy();
    let matrix = engine.run(&icache_runs());
    let mut r = Report::new("icache");
    r.line("== §6.2: instruction-cache effects (nop-padded vs compressed images) ==");
    for (suite, members) in matrix.by_suite() {
        r.blank_then(format!("-- {suite} --"));
        let mut t = TableBlock::new(
            format!("icache.{suite}"),
            &["benchmark", "static", "compressed", "padded-x", "compressed-x"],
        );
        let mut pad = Vec::new();
        let mut comp = Vec::new();
        for row in &members {
            let p = &row.prep;
            let px = row.speedup_over(0, 1);
            let cx = row.speedup_over(0, 2);
            pad.push(px);
            comp.push(cx);
            // The compressed image is already cached from the matrix run.
            let compressed_len = p.image(&policy, RewriteStyle::Compressed).program.len();
            t.row(vec![
                p.name.clone(),
                p.prog.len().to_string(),
                compressed_len.to_string(),
                format!("{px:.3}"),
                format!("{cx:.3}"),
            ]);
        }
        r.table(t);
        r.line(format!("gmean: padded {:.3}  compressed {:.3}", gmean(&pad), gmean(&comp)));
    }
    r
}

/// §6.3 — scheduler (issue queue) capacity.
pub fn iq_capacity(args: &RunArgs) -> Report {
    let engine = args.engine().build();
    let matrix = engine.run(&iq_capacity_runs());
    let mut r = Report::new("iq_capacity");
    r.line("== §6.3: performance vs issue-queue size (relative to 50-entry baseline) ==");
    for (suite, members) in matrix.by_suite() {
        r.blank_then(format!("-- {suite} --"));
        let mut t = TableBlock::new(
            format!("iq_capacity.{suite}"),
            &["benchmark", "iq", "baseline", "intmem"],
        );
        let mut means: Vec<(usize, Vec<f64>, Vec<f64>)> =
            IQ_SIZES.iter().map(|&s| (s, Vec::new(), Vec::new())).collect();
        for row in &members {
            for (si, &iq) in IQ_SIZES.iter().enumerate() {
                let b = row.speedup_over(0, 1 + 2 * si);
                let m = row.speedup_over(0, 2 + 2 * si);
                means[si].1.push(b);
                means[si].2.push(m);
                t.row(vec![
                    row.prep.name.clone(),
                    iq.to_string(),
                    format!("{b:.3}"),
                    format!("{m:.3}"),
                ]);
            }
        }
        r.table(t);
        for (iq, b, m) in &means {
            r.line(format!("gmean @{iq}: baseline {:.3}  intmem {:.3}", gmean(b), gmean(m)));
        }
    }
    r
}

// ---------------------------------------------------------------------------
// perf — the benchmark driver (formerly the `perf_report` binary).
// ---------------------------------------------------------------------------

/// One timed experiment row of the perf report.
struct Measurement {
    name: &'static str,
    prep_ms: f64,
    run_ms: f64,
    sim_cycles: u64,
    sim_ops: u64,
    /// Fused-over-scalar throughput ratio (the `fused_speedup` row only).
    speedup: Option<f64>,
    /// Pure selector wall-clock (the per-policy `select_<family>` rows
    /// only; see [`perf_selection_policies`]).
    selection_ms: Option<f64>,
}

impl Measurement {
    fn wall_ms(&self) -> f64 {
        self.prep_ms + self.run_ms
    }

    fn to_json(&self) -> String {
        let rate = |n: u64| {
            if self.run_ms > 0.0 {
                n as f64 / 1e6 / (self.run_ms / 1e3)
            } else {
                0.0
            }
        };
        let mut row = format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.1}, \"prep_ms\": {:.1}, \
             \"run_ms\": {:.1}, \"sim_cycles\": {}, \"sim_ops\": {}",
            self.name,
            self.wall_ms(),
            self.prep_ms,
            self.run_ms,
            self.sim_cycles,
            self.sim_ops,
        );
        // Selection-only rows simulate nothing: a literal
        // `mcycles_per_s: 0.00` reads as a wedged simulator, so the rate
        // is simply omitted where it is undefined.
        if self.sim_cycles > 0 {
            let _ = write!(row, ", \"mcycles_per_s\": {:.2}", rate(self.sim_cycles));
        }
        let _ = write!(row, ", \"mops_per_s\": {:.2}", rate(self.sim_ops));
        if let Some(x) = self.speedup {
            let _ = write!(row, ", \"speedup\": {x:.2}");
        }
        if let Some(x) = self.selection_ms {
            let _ = write!(row, ", \"selection_time_ms\": {x:.2}");
        }
        row.push('}');
        row
    }
}

/// A fresh engine for perf measurements. The artifact cache is **off**
/// here regardless of `--no-cache`: the per-experiment rows exist to
/// track real compute against the committed trajectory, and a warm cache
/// would silently hollow them out. The cache's own benefit is measured
/// explicitly by [`perf_artifact_sweep`].
fn perf_engine(
    args: &RunArgs,
    quick: bool,
    workloads: Option<&[&str]>,
    fuse: bool,
) -> (Engine, f64) {
    let mut b = Engine::builder().quick(quick).cache(false).fuse(fuse);
    if let Some(t) = args.threads {
        b = b.threads(t);
    }
    if let Some(w) = workloads {
        b = b.workloads(w);
    }
    let t = Instant::now();
    let engine = b.build();
    (engine, t.elapsed().as_secs_f64() * 1e3)
}

fn perf_sim_experiment(
    name: &'static str,
    args: &RunArgs,
    quick: bool,
    workloads: Option<&[&str]>,
    runs: &[Run],
    fuse: bool,
) -> Measurement {
    let (engine, prep_ms) = perf_engine(args, quick, workloads, fuse);
    let t = Instant::now();
    let matrix = engine.run(runs);
    let run_ms = t.elapsed().as_secs_f64() * 1e3;
    let stats = matrix.rows.iter().flat_map(|r| r.stats.iter());
    let (sim_cycles, sim_ops) = stats.fold((0, 0), |(c, o), s| (c + s.cycles, o + s.ops));
    eprintln!("{name:14} prep {prep_ms:8.1} ms  run {run_ms:8.1} ms  {sim_cycles:>10} cycles");
    Measurement {
        name,
        prep_ms,
        run_ms,
        sim_cycles,
        sim_ops,
        speedup: None,
        selection_ms: None,
    }
}

/// A synthetic selection workload far past the real candidate pools: many
/// heavily-overlapping instances of many templates with tied benefits,
/// selected at a large MGT capacity. This is the O(rounds × instances ×
/// members) worst case the incremental greedy picker exists for.
fn perf_select_stress(quick: bool) -> Measurement {
    let template = |k: i64| MgTemplate {
        ops: (0..3)
            .map(|_| TmplInst {
                op: Opcode::Addq,
                a: TmplOperand::E0,
                b: TmplOperand::Imm(k),
                disp: 0,
            })
            .collect(),
        out: Some(2),
    };
    let (n_templates, per_template) = if quick { (1500, 12) } else { (4000, 16) };
    let mut rng = StdRng::seed_from_u64(0x5eed_ca5e);
    let mut candidates = Vec::with_capacity(n_templates * per_template);
    for k in 0..n_templates {
        for _ in 0..per_template {
            let start = rng.gen_range(0..n_templates * 4);
            candidates.push(MiniGraph {
                members: vec![start, start + 1, start + 2],
                anchor: start + 2,
                inputs: vec![],
                output: None,
                template: template(k as i64),
                freq: rng.gen_range(1u64..=3),
                branch_target: None,
            });
        }
    }
    let policy = Policy::default().with_capacity(n_templates / 2);
    let t = Instant::now();
    let sel = select(&candidates, &policy);
    let run_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "select_stress  prep      0.0 ms  run {run_ms:8.1} ms  {} instances chosen",
        sel.chosen.len()
    );
    Measurement {
        name: "select_stress",
        prep_ms: 0.0,
        run_ms,
        sim_cycles: 0,
        sim_ops: sel.chosen.len() as u64,
        speedup: None,
        selection_ms: Some(run_ms),
    }
}

/// Times each selection-policy family (see [`mg_policy::all_selectors`])
/// over every registry prep under the integer-memory policy: pure
/// selector wall-clock, no simulation. Each row's JSON carries an
/// explicit `selection_time_ms` field next to the generic timings, so
/// the committed trajectory tracks selector cost per family.
fn perf_selection_policies(args: &RunArgs, quick: bool) -> Vec<Measurement> {
    let (engine, _prep_ms) = perf_engine(args, quick, None, false);
    let policy = Policy::integer_memory();
    mg_policy::all_selectors()
        .iter()
        .map(|s| {
            let t = Instant::now();
            let chosen: u64 = engine
                .map(|p| p.select_with(s.as_ref(), &policy).chosen.len() as u64)
                .iter()
                .sum();
            let run_ms = t.elapsed().as_secs_f64() * 1e3;
            let name: &'static str = match s.id() {
                "greedy" => "select_greedy",
                "weighted" => "select_weighted",
                "tiling" => "select_tiling",
                "dp" => "select_dp",
                _ => "select_other",
            };
            eprintln!(
                "{name:14} prep      0.0 ms  run {run_ms:8.1} ms  {chosen} instances chosen"
            );
            Measurement {
                name,
                prep_ms: 0.0,
                run_ms,
                sim_cycles: 0,
                sim_ops: chosen,
                speedup: None,
                selection_ms: Some(run_ms),
            }
        })
        .collect()
}

fn perf_fig5_experiment(args: &RunArgs, quick: bool) -> Measurement {
    let (engine, prep_ms) = perf_engine(args, quick, None, false);
    let t = Instant::now();
    let selected = fig5_selection_sweep(&engine);
    let run_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "fig5_coverage  prep {prep_ms:8.1} ms  run {run_ms:8.1} ms  {selected} instances chosen"
    );
    Measurement {
        name: "fig5_coverage",
        prep_ms,
        run_ms,
        sim_cycles: 0,
        sim_ops: selected,
        speedup: None,
        selection_ms: None,
    }
}

/// One full artifact sweep against the persistent cache: every fig5
/// selection, plus each workload's baseline trace and integer-memory
/// image. Run twice — against an empty cache, then the warm one — this
/// measures exactly the recomputation the cache layer saves (simulation
/// excluded by design: it is never cached).
fn perf_artifact_sweep(
    name: &'static str,
    args: &RunArgs,
    quick: bool,
    dir: &std::path::Path,
) -> Measurement {
    let mut b = Engine::builder().quick(quick).cache_dir(dir);
    if let Some(t) = args.threads {
        b = b.threads(t);
    }
    let t = Instant::now();
    let engine = b.build();
    let prep_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let selected = fig5_selection_sweep(&engine);
    let artifact_ops: u64 = engine
        .map(|p| {
            let base = p.base_trace().len() as u64;
            let img =
                p.image(&Policy::integer_memory(), RewriteStyle::NopPadded).trace.len() as u64;
            base + img
        })
        .iter()
        .sum();
    let run_ms = t.elapsed().as_secs_f64() * 1e3;
    eprintln!("{name} prep {prep_ms:8.1} ms  run {run_ms:8.1} ms  {selected} instances chosen");
    Measurement {
        name,
        prep_ms,
        run_ms,
        sim_cycles: 0,
        sim_ops: selected + artifact_ops,
        speedup: None,
        selection_ms: None,
    }
}

/// Extracts the recorded mode and `(name, wall_ms)` pairs from a report
/// previously written by this driver (line-oriented scan; not a general
/// JSON parser).
fn read_perf_baseline(path: &str) -> (String, Vec<(String, f64)>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let mut mode = String::new();
    let mut rows = Vec::new();
    for line in text.lines() {
        if let Some(at) = line.find("\"mode\": \"") {
            if let Some(end) = line[at + 9..].find('"') {
                mode = line[at + 9..at + 9 + end].to_string();
            }
            continue;
        }
        let Some(name_at) = line.find("\"name\": \"") else { continue };
        let rest = &line[name_at + 9..];
        let Some(name_end) = rest.find('"') else { continue };
        let name = rest[..name_end].to_string();
        let Some(wall_at) = rest.find("\"wall_ms\": ") else { continue };
        let wall = rest[wall_at + 11..]
            .split([',', '}'])
            .next()
            .and_then(|v| v.trim().parse::<f64>().ok());
        if let Some(wall) = wall {
            rows.push((name, wall));
        }
    }
    (mode, rows)
}

/// The benchmark driver: times every figure sweep and the artifact cache
/// (cold vs warm), writes `BENCH_pipeline.json`, and optionally gates
/// against a committed baseline. Prints nothing to stdout in text format
/// (progress goes to stderr), exactly like the legacy `perf_report`
/// binary; the structured formats expose the measurements as a table.
pub fn perf(args: &RunArgs) -> Report {
    let quick = args.is_quick(true);
    let mode = if quick { "quick" } else { "full" };
    eprintln!("perf_report: mode {mode}");

    // Per-experiment rows are measured with fusion **off**: they track
    // scalar simulator compute against the committed trajectory, and are
    // comparable across releases that predate fusion. The fused rows
    // below measure the fusion win explicitly.
    let mut measurements = vec![
        perf_fig5_experiment(args, quick),
        perf_sim_experiment("fig6", args, quick, None, &fig6_runs(), false),
        perf_sim_experiment("fig7", args, quick, Some(&FIG7_FOCUS), &fig7_runs(), false),
        perf_sim_experiment("fig8_regfile", args, quick, None, &fig8_regfile_runs(), false),
        perf_sim_experiment("fig8_bandwidth", args, quick, None, &fig8_bandwidth_runs(), false),
        perf_sim_experiment("icache", args, quick, None, &icache_runs(), false),
        perf_sim_experiment("iq_capacity", args, quick, None, &iq_capacity_runs(), false),
        perf_select_stress(quick),
    ];
    measurements.extend(perf_selection_policies(args, quick));

    // Fused trajectory: both fig8 sweeps — the widest config sweeps in
    // the registry — as one fused run, plus the fused-over-scalar
    // throughput ratio on those same sweeps.
    let scalar_fig8_ms: f64 = measurements
        .iter()
        .filter(|m| m.name == "fig8_regfile" || m.name == "fig8_bandwidth")
        .map(|m| m.run_ms)
        .sum();
    let mut fig8_fused_runs = fig8_regfile_runs();
    fig8_fused_runs.extend(fig8_bandwidth_runs());
    let fused = perf_sim_experiment("fig8_fused", args, quick, None, &fig8_fused_runs, true);
    let fused_speedup = if fused.run_ms > 0.0 { scalar_fig8_ms / fused.run_ms } else { 0.0 };
    eprintln!("fused_speedup  {fused_speedup:.2}x (fig8 sweeps, fused over scalar)");
    let fused_run_ms = fused.run_ms;
    let fused_cycles = fused.sim_cycles;
    let fused_ops = fused.sim_ops;
    measurements.push(fused);
    measurements.push(Measurement {
        name: "fused_speedup",
        prep_ms: 0.0,
        run_ms: fused_run_ms,
        sim_cycles: fused_cycles,
        sim_ops: fused_ops,
        speedup: Some(fused_speedup),
        selection_ms: None,
    });

    // Cold/warm artifact-cache trajectory points: a dedicated cache root,
    // cleared for the cold pass, reused warm. Skipped under --no-cache.
    if !args.no_cache && !PrepCache::disabled_by_env() {
        let dir = PrepCache::default_root().join("perf-sweep");
        let sweep_cache = PrepCache::new(&dir);
        let _ = sweep_cache.clear();
        measurements.push(perf_artifact_sweep("artifacts_cold", args, quick, &dir));
        measurements.push(perf_artifact_sweep("artifacts_warm", args, quick, &dir));
        let _ = sweep_cache.clear();
    }

    let rows: Vec<String> = measurements.iter().map(Measurement::to_json).collect();
    let json = format!(
        "{{\n  \"schema\": \"mg-perf-report-v1\",\n  \"mode\": \"{mode}\",\n  \
         \"experiments\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);

    let mut status = 0;
    if args.min_fused_speedup > 0.0 {
        if fused_speedup < args.min_fused_speedup {
            eprintln!(
                "FUSED REGRESSION: fig8 fused speedup {fused_speedup:.2}x < required {:.2}x",
                args.min_fused_speedup
            );
            status = 1;
        } else {
            eprintln!(
                "fused speedup {fused_speedup:.2}x meets the {:.2}x gate",
                args.min_fused_speedup
            );
        }
    }
    if let Some(path) = &args.baseline {
        let (base_mode, baseline) = read_perf_baseline(path);
        // Quick and full wall clocks differ by an order of magnitude:
        // comparing across modes is either a vacuous pass or a spurious
        // failure, so refuse outright.
        assert_eq!(
            base_mode, mode,
            "baseline {path} was recorded in {base_mode:?} mode but this run is {mode:?}; \
             regenerate the baseline in the same mode"
        );
        for m in &measurements {
            let Some((_, old)) = baseline.iter().find(|(n, _)| n == m.name) else {
                eprintln!("note: {} absent from baseline {path}", m.name);
                continue;
            };
            let ratio = if *old > 0.0 { m.wall_ms() / old } else { 0.0 };
            if ratio > args.max_regression {
                eprintln!(
                    "REGRESSION: {} took {:.1} ms vs baseline {:.1} ms ({ratio:.2}x > {:.2}x)",
                    m.name,
                    m.wall_ms(),
                    old,
                    args.max_regression
                );
                status = 1;
            }
        }
        if status == 0 {
            eprintln!("all experiments within {:.1}x of baseline {path}", args.max_regression);
        }
    }

    let mut r = Report::new("perf");
    let mut t = TableBlock::new(
        "perf.experiments",
        &["name", "wall_ms", "prep_ms", "run_ms", "sim_cycles", "sim_ops"],
    )
    .hidden();
    for m in &measurements {
        t.row(vec![
            m.name.to_string(),
            format!("{:.1}", m.wall_ms()),
            format!("{:.1}", m.prep_ms),
            format!("{:.1}", m.run_ms),
            m.sim_cycles.to_string(),
            m.sim_ops.to_string(),
        ]);
    }
    r.table(t);
    r.status = status;
    r
}
