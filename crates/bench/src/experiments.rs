//! Shared experiment definitions: the run matrices each per-figure
//! binary simulates, factored out so the binaries and the `perf_report`
//! benchmark driver measure exactly the same work.
//!
//! Each `*_runs()` function returns the column specification of one
//! figure's (workload × run) matrix; the binaries add their own
//! rendering, and `perf_report` times `Engine::run` over the same
//! columns. Keep these in sync with the paper sections cited in the
//! binaries' module docs.

use mg_core::{select_domain, Policy, RewriteStyle};
use mg_harness::{Engine, Run};
use mg_uarch::SimConfig;

/// Figure 6 columns: baseline plus the four mini-graph machine
/// configurations (integer / integer-memory, plain / collapsing ALU
/// pipelines).
pub fn fig6_runs() -> Vec<Run> {
    let style = RewriteStyle::NopPadded;
    vec![
        Run::baseline(SimConfig::baseline()),
        Run::mini_graph(Policy::integer(), style, SimConfig::mg_integer()).label("int"),
        Run::mini_graph(Policy::integer(), style, SimConfig::mg_integer().with_collapsing())
            .label("int+coll"),
        Run::mini_graph(Policy::integer_memory(), style, SimConfig::mg_integer_memory())
            .label("intmem"),
        Run::mini_graph(
            Policy::integer_memory(),
            style,
            SimConfig::mg_integer_memory().with_collapsing(),
        )
        .label("intmem+coll"),
    ]
}

/// The paper's six Figure 7 focus benchmarks (behavioural analogues).
pub const FIG7_FOCUS: [&str; 6] =
    ["gsm.toast", "mpeg2.idct", "reed.enc", "mcf.netw", "sha.rounds", "adpcm.enc"];

/// Figure 7 integer-policy ablations: (label, policy).
pub fn fig7_int_policies() -> Vec<(&'static str, Policy)> {
    vec![
        ("int", Policy::integer()),
        ("int -ext", Policy { allow_external_serial: false, ..Policy::integer() }),
        ("int -int", Policy { allow_internal_parallel: false, ..Policy::integer() }),
        (
            "int -both",
            Policy {
                allow_external_serial: false,
                allow_internal_parallel: false,
                ..Policy::integer()
            },
        ),
    ]
}

/// Figure 7 integer-memory-policy ablations: (label, policy).
pub fn fig7_mem_policies() -> Vec<(&'static str, Policy)> {
    vec![
        ("intmem", Policy::integer_memory()),
        (
            "intmem -serial",
            Policy {
                allow_external_serial: false,
                allow_internal_parallel: false,
                ..Policy::integer_memory()
            },
        ),
        (
            "intmem -serial -replay",
            Policy {
                allow_external_serial: false,
                allow_internal_parallel: false,
                allow_interior_loads: false,
                ..Policy::integer_memory()
            },
        ),
    ]
}

/// Figure 7 columns: baseline plus all seven serialization/replay
/// ablations.
pub fn fig7_runs() -> Vec<Run> {
    let mut runs = vec![Run::baseline(SimConfig::baseline())];
    for (name, policy) in fig7_int_policies() {
        runs.push(
            Run::mini_graph(policy, RewriteStyle::NopPadded, SimConfig::mg_integer())
                .label(name),
        );
    }
    for (name, policy) in fig7_mem_policies() {
        runs.push(
            Run::mini_graph(policy, RewriteStyle::NopPadded, SimConfig::mg_integer_memory())
                .label(name),
        );
    }
    runs
}

/// Figure 8 (top) physical-register-file sweep points.
pub const REGFILE_SIZES: [usize; 4] = [164, 144, 124, 104];

/// Figure 8 (top) columns: the 164-register baseline reference, then
/// (baseline, int, intmem) per register-file size.
pub fn fig8_regfile_runs() -> Vec<Run> {
    let style = RewriteStyle::NopPadded;
    let mut runs = vec![Run::baseline(SimConfig::baseline())];
    for &regs in &REGFILE_SIZES {
        runs.push(
            Run::baseline(SimConfig::baseline().with_phys_regs(regs))
                .label(format!("base@{regs}")),
        );
        runs.push(
            Run::mini_graph(
                Policy::integer(),
                style,
                SimConfig::mg_integer().with_phys_regs(regs),
            )
            .label(format!("int@{regs}")),
        );
        runs.push(
            Run::mini_graph(
                Policy::integer_memory(),
                style,
                SimConfig::mg_integer_memory().with_phys_regs(regs),
            )
            .label(format!("intmem@{regs}")),
        );
    }
    runs
}

/// Figure 8 (bottom): the narrowed 4-wide machine (fetch/rename/retire
/// and execute, 1 load port).
pub fn four_wide() -> SimConfig {
    let mut c = SimConfig::baseline().with_front_width(4);
    c.issue_width = 4;
    c.load_ports = 1;
    c
}

/// Figure 8 (bottom): a 4-wide front end with 6-wide execution
/// ("can execute 6 instructions per cycle, including 2 loads").
pub fn four_wide_six_exec() -> SimConfig {
    SimConfig::baseline().with_front_width(4)
}

/// Figure 8 (bottom): the 2-cycle (pipelined) scheduler baseline.
pub fn two_cycle_sched() -> SimConfig {
    let mut c = SimConfig::baseline();
    c.sched_loop = 2;
    c
}

/// Figure 8 (bottom) columns: each bandwidth/scheduler reduction with
/// and without integer-memory mini-graphs.
pub fn fig8_bandwidth_runs() -> Vec<Run> {
    let with_mg = |mut cfg: SimConfig| {
        cfg.mg = mg_uarch::MgSupport::IntegerMemory;
        cfg
    };
    let mg = |cfg: SimConfig, label: &str| {
        Run::mini_graph(Policy::integer_memory(), RewriteStyle::NopPadded, with_mg(cfg))
            .label(label)
    };
    vec![
        Run::baseline(SimConfig::baseline()).label("6w"),
        mg(SimConfig::baseline(), "6w+mg"),
        Run::baseline(four_wide()).label("4w"),
        mg(four_wide(), "4w+mg"),
        Run::baseline(four_wide_six_exec()).label("4w6x"),
        mg(four_wide_six_exec(), "4w6x+mg"),
        Run::baseline(two_cycle_sched()).label("2cyc"),
        mg(two_cycle_sched(), "2cyc+mg"),
    ]
}

/// §6.2 instruction-cache-effects selection policy — shared with the
/// binary's compressed-image static-size lookup, which must use the
/// same policy the matrix simulated for its memo-cache hit (and its
/// numbers) to be the right ones.
pub fn icache_policy() -> Policy {
    Policy::integer_memory()
}

/// §6.2 instruction-cache-effects columns: baseline, nop-padded image,
/// compressed image.
pub fn icache_runs() -> Vec<Run> {
    let policy = icache_policy();
    vec![
        Run::baseline(SimConfig::baseline()),
        Run::mini_graph(
            policy.clone(),
            RewriteStyle::NopPadded,
            SimConfig::mg_integer_memory(),
        )
        .label("padded"),
        Run::mini_graph(policy, RewriteStyle::Compressed, SimConfig::mg_integer_memory())
            .label("compressed"),
    ]
}

/// §6.3 issue-queue sweep points.
pub const IQ_SIZES: [usize; 4] = [50, 40, 30, 20];

/// §6.3 columns: the 50-entry baseline reference, then (baseline,
/// intmem) per issue-queue size.
pub fn iq_capacity_runs() -> Vec<Run> {
    let mut runs = vec![Run::baseline(SimConfig::baseline())];
    for &iq in &IQ_SIZES {
        let mut b_cfg = SimConfig::baseline();
        b_cfg.iq_size = iq;
        let mut m_cfg = SimConfig::mg_integer_memory();
        m_cfg.iq_size = iq;
        runs.push(Run::baseline(b_cfg).label(format!("base@{iq}")));
        runs.push(
            Run::mini_graph(Policy::integer_memory(), RewriteStyle::NopPadded, m_cfg)
                .label(format!("intmem@{iq}")),
        );
    }
    runs
}

/// Figure 5 capacity sweep (MGT entries).
pub const FIG5_CAPACITIES: [usize; 4] = [32, 128, 512, 2048];
/// Figure 5 size sweep (max instructions per mini-graph).
pub const FIG5_SIZES: [usize; 4] = [2, 3, 4, 8];

/// The selection work behind all three Figure 5 panels (application-
/// specific integer + integer-memory grids, and the domain-specific
/// shared-MGT panel), without the rendering. Returns the total number of
/// instances selected, as a cheap checksum for the caller.
pub fn fig5_selection_sweep(engine: &Engine) -> u64 {
    let mut selected = 0u64;
    for base in [Policy::integer(), Policy::integer_memory()] {
        let per_workload: Vec<u64> = engine.map(|p| {
            let mut n = 0u64;
            for cap in FIG5_CAPACITIES {
                for sz in FIG5_SIZES {
                    let policy = base.clone().with_capacity(cap).with_max_size(sz);
                    n += p.select(&policy).chosen.len() as u64;
                }
            }
            n
        });
        selected += per_workload.iter().sum::<u64>();
    }
    for (_, members) in engine.by_suite() {
        let per_prog: Vec<Vec<mg_core::MiniGraph>> =
            members.iter().map(|p| p.candidates.clone()).collect();
        if per_prog.is_empty() {
            continue;
        }
        for cap in FIG5_CAPACITIES {
            let policy = Policy::integer_memory().with_capacity(cap).with_max_size(4);
            let (sels, _) = select_domain(&per_prog, &policy);
            selected += sels.iter().map(|s| s.chosen.len() as u64).sum::<u64>();
        }
    }
    selected
}
