//! The selection-policy lab: `mg run policy_lab`.
//!
//! Runs every selection-policy family in [`mg_policy::all_selectors`] —
//! the paper's greedy baseline, loop-weighted greedy, tree tiling, and
//! the exact-DP selector — over the registry kernels *and* the compiled
//! `mgl.*` corpus, and compares them on four axes per workload:
//!
//! * **coverage** — dynamic instructions inside chosen mini-graphs,
//!   always measured with the true benefit `(n-1)·f` regardless of the
//!   family's internal ranking;
//! * **IPC** — a real timing simulation of each family's rewritten
//!   image under the integer-memory machine configuration, executed
//!   through the fused sweep path ([`Prep::try_run_selector_sweep`]);
//! * **selection time** — wall-clock milliseconds spent inside the
//!   selector itself (preparation and simulation excluded);
//! * **optimality gap** — saved slots left on the table versus the
//!   per-block exact optimum, certified by [`DpCertifier`] on every
//!   block within the DP bounds (see `mg_policy::dp`); blocks outside
//!   the bounds are reported uncertified, never estimated.
//!
//! Selections and rewritten images are memoized and persisted per
//! selector id (see `mg_harness::prep_cache`): running the lab warms a
//! disjoint cache-key space per family and never touches cached greedy
//! artifacts.

use crate::cli::{Report, RunArgs, TableBlock};
use mg_core::{Policy, RewriteStyle, Selection, Selector};
use mg_harness::{gmean, Prep};
use mg_policy::{all_selectors, DpCertifier};
use mg_uarch::SimConfig;
use std::sync::Arc;
use std::time::Instant;

/// One (workload × family) cell of the lab matrix.
struct LabCell {
    family: String,
    coverage: f64,
    ipc: Option<f64>,
    select_ms: f64,
    gap: u64,
    gap_pct: f64,
}

/// Measures every family on one prepared workload. IPC is `None` when
/// the rewritten image fails to simulate (surfaced as an error row, not
/// a panic, so one bad workload cannot sink the whole lab).
fn run_workload(prep: &Prep, policy: &Policy, selectors: &[Arc<dyn Selector>]) -> Vec<LabCell> {
    let certifier = DpCertifier::new(&prep.select_inputs(), policy);
    selectors
        .iter()
        .map(|s| {
            let t = Instant::now();
            let sel: Arc<Selection> = prep.select_with(s.as_ref(), policy);
            let select_ms = t.elapsed().as_secs_f64() * 1e3;
            let gap = certifier.evaluate(&sel, &prep.cfg);
            let ipc = prep
                .try_run_selector_sweep(
                    s.as_ref(),
                    policy,
                    RewriteStyle::NopPadded,
                    &[SimConfig::mg_integer_memory()],
                )
                .ok()
                .and_then(|stats| stats.first().map(mg_uarch::SimStats::ipc));
            LabCell {
                family: s.id().to_string(),
                coverage: sel.coverage(prep.total_dyn),
                ipc,
                select_ms,
                gap: gap.gap(),
                gap_pct: gap.gap_pct(),
            }
        })
        .collect()
}

/// `mg run policy_lab` — the experiment registry's builder.
pub fn policy_lab(args: &RunArgs) -> Report {
    let mut r = Report::new("policy_lab");
    r.line("== selection-policy lab: greedy / weighted / tiling / exact DP ==");

    let policy = Policy::integer_memory();
    let selectors = all_selectors();

    // Registry kernels plus the compiled corpus: extra sources join the
    // default all-workloads set, so one engine prepares both.
    let mut b = args.engine();
    for x in crate::lang::corpus_extras() {
        b = b.extra_source(x);
    }
    let engine = match b.try_build() {
        Ok(engine) => engine,
        Err(e) => {
            r.line(format!("error: {e}"));
            r.status = 70;
            return r;
        }
    };

    r.blank_then("-- per-workload matrix (integer_memory policy, nop-padded images) --");
    // The visible tables carry only deterministic quick-mode columns
    // (coverage, IPC, gap): this report lands verbatim in the generated
    // `EXPERIMENTS.md`, which CI regenerates and diffs. Wall-clock
    // selection times go in a hidden table, visible to the structured
    // formats (`--format json`) the smoke job reads.
    let mut t = TableBlock::new(
        "policy_lab.matrix",
        &["workload", "family", "cov%", "IPC", "gap", "gap%"],
    );
    let mut timing =
        TableBlock::new("policy_lab.timing", &["workload", "family", "select_ms"]).hidden();
    // Columns for the summary: per family, across workloads.
    #[derive(Default)]
    struct FamilyTotals {
        id: String,
        covs: Vec<f64>,
        ipcs: Vec<f64>,
        select_ms: f64,
        gap: u64,
    }
    let mut by_family: Vec<FamilyTotals> = selectors
        .iter()
        .map(|s| FamilyTotals { id: s.id().to_string(), ..FamilyTotals::default() })
        .collect();
    // Workloads where a non-greedy family strictly beats greedy coverage.
    let mut beats_greedy: Vec<(String, String)> = Vec::new();

    let cells: Vec<(String, Vec<LabCell>)> = engine
        .map(|p| (p.name.clone(), run_workload(p, &policy, &selectors)))
        .into_iter()
        .collect();
    for (workload, row) in &cells {
        let greedy_cov =
            row.iter().find(|c| c.family == "greedy").map(|c| c.coverage).unwrap_or(0.0);
        for c in row {
            t.row(vec![
                workload.clone(),
                c.family.clone(),
                format!("{:.1}", 100.0 * c.coverage),
                c.ipc.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into()),
                c.gap.to_string(),
                format!("{:.2}", c.gap_pct),
            ]);
            timing.row(vec![workload.clone(), c.family.clone(), format!("{:.3}", c.select_ms)]);
            if let Some(f) = by_family.iter_mut().find(|f| f.id == c.family) {
                f.covs.push(c.coverage);
                if let Some(ipc) = c.ipc {
                    f.ipcs.push(ipc);
                }
                f.select_ms += c.select_ms;
                f.gap += c.gap;
            }
            if c.family != "greedy" && c.coverage > greedy_cov {
                beats_greedy.push((workload.clone(), c.family.clone()));
            }
        }
    }
    r.table(t);

    r.blank_then("-- per-family summary --");
    let mut t = TableBlock::new(
        "policy_lab.summary",
        &["family", "workloads", "mean cov%", "gmean IPC", "total gap"],
    );
    for f in &by_family {
        let mean_cov = if f.covs.is_empty() {
            0.0
        } else {
            f.covs.iter().sum::<f64>() / f.covs.len() as f64
        };
        t.row(vec![
            f.id.clone(),
            f.covs.len().to_string(),
            format!("{:.1}", 100.0 * mean_cov),
            format!("{:.3}", gmean(&f.ipcs)),
            f.gap.to_string(),
        ]);
        timing.row(vec!["(total)".into(), f.id.clone(), format!("{:.3}", f.select_ms)]);
    }
    r.table(t);
    r.table(timing);

    // The DP gauge's certification footprint, over one representative
    // prep set: how many blocks the exact bound actually covers.
    let certified: Vec<(String, usize, usize)> = engine
        .map(|p| {
            let c = DpCertifier::new(&p.select_inputs(), &policy);
            (p.name.clone(), c.certified_blocks(), p.cfg.blocks.len())
        })
        .into_iter()
        .collect();
    let (cert_total, blocks_total) =
        certified.iter().fold((0, 0), |(c, b), (_, cc, bb)| (c + cc, b + bb));
    r.line(format!(
        "DP gauge: {cert_total}/{blocks_total} blocks certified exactly across {} workloads",
        certified.len()
    ));

    beats_greedy.sort();
    beats_greedy.dedup();
    if beats_greedy.is_empty() {
        r.line("non-greedy coverage wins: none (greedy matched or beat every family)");
    } else {
        let wins: Vec<String> =
            beats_greedy.iter().map(|(w, f)| format!("{f} on {w}")).collect();
        r.line(format!("non-greedy coverage wins: {}", wins.join(", ")));
    }
    r
}
