//! Experiment harness: shared preparation and measurement machinery used
//! by the per-figure binaries (`fig5_coverage`, `fig6_performance`,
//! `fig7_serialization`, `fig8_regfile`, `fig8_bandwidth`, `robustness`,
//! `icache_effects`, `iq_capacity`) and the criterion benches.
//!
//! Each binary regenerates one table/figure of the paper's evaluation;
//! `EXPERIMENTS.md` records the measured output next to the paper's
//! numbers.

use mg_core::{
    enumerate_candidates, rewrite, select, MiniGraph, Policy, RewriteStyle, Selection,
};
use mg_isa::{HandleCatalog, Memory, Program};
use mg_profile::{build_cfg, profile_program, record_trace, Trace};
use mg_uarch::{simulate, SimConfig, SimStats};
use mg_workloads::{Input, Suite, Workload};

/// Functional-simulation step budget for profiling/tracing runs.
pub const STEP_BUDGET: u64 = 200_000_000;

/// A workload prepared for experimentation: profiled and with all legal
/// mini-graph candidates enumerated (at the maximum size studied, so any
/// smaller-size policy can select from the same pool).
pub struct Prep {
    /// Workload name.
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// The original (baseline) program image.
    pub prog: Program,
    /// Total dynamic instructions of the profiling run (the coverage
    /// denominator).
    pub total_dyn: u64,
    /// All legal candidates (enumerated with `max_size` = 8).
    pub candidates: Vec<MiniGraph>,
    build: fn(&Input) -> (Program, Memory),
    input: Input,
}

impl Prep {
    /// Profiles `w` on `input` and enumerates candidates.
    pub fn new(w: &Workload, input: &Input) -> Prep {
        let (prog, mut mem) = w.build(input);
        let cfg = build_cfg(&prog);
        let prof =
            profile_program(&prog, &mut mem, None, STEP_BUDGET).expect("workload halts");
        let candidates = enumerate_candidates(&prog, &cfg, &prof, 8);
        Prep {
            name: w.name,
            suite: w.suite,
            prog,
            total_dyn: prof.total,
            candidates,
            build: w.build,
            input: *input,
        }
    }

    /// Prepares every registered workload on the given input.
    pub fn all(input: &Input) -> Vec<Prep> {
        mg_workloads::all().iter().map(|w| Prep::new(w, input)).collect()
    }

    /// Selects mini-graphs under `policy`.
    pub fn select(&self, policy: &Policy) -> Selection {
        select(&self.candidates, policy)
    }

    /// The baseline dynamic trace (fresh memory, same input).
    pub fn base_trace(&self) -> Trace {
        let (_, mut mem) = (self.build)(&self.input);
        record_trace(&self.prog, &mut mem, None, STEP_BUDGET).expect("workload halts")
    }

    /// Rewrites with `selection` and returns the handle image + its trace.
    pub fn mg_image(
        &self,
        selection: &Selection,
        style: RewriteStyle,
    ) -> (Program, Trace, HandleCatalog) {
        let rw = rewrite(&self.prog, selection, style);
        let (_, mut mem) = (self.build)(&self.input);
        let trace = record_trace(&rw.program, &mut mem, Some(&selection.catalog), STEP_BUDGET)
            .expect("rewritten workload halts");
        (rw.program, trace, selection.catalog.clone())
    }

    /// Simulates the baseline image under `cfg`.
    pub fn run_baseline(&self, cfg: &SimConfig) -> SimStats {
        let t = self.base_trace();
        simulate(cfg, &self.prog, &t, &HandleCatalog::new())
    }

    /// Simulates the rewritten image of `selection` under `cfg`.
    pub fn run_selection(
        &self,
        selection: &Selection,
        style: RewriteStyle,
        cfg: &SimConfig,
    ) -> SimStats {
        let (prog, trace, catalog) = self.mg_image(selection, style);
        simulate(cfg, &prog, &trace, &catalog)
    }
}

/// Geometric mean of `xs` (1.0 for an empty slice).
pub fn gmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Speedup of `mg` over `base`, computed as the ratio of IPCs over
/// *original program* instructions. For full-trace runs both images
/// represent identical instruction streams and this equals the cycle
/// ratio; under `max_ops` truncation (quick mode) the IPC ratio correctly
/// normalizes for the differing amounts of represented work per fetched
/// operation.
pub fn speedup(base: &SimStats, mg: &SimStats) -> f64 {
    mg.ipc() / base.ipc()
}

/// Groups prepared workloads by suite, preserving registration order.
pub fn by_suite(preps: &[Prep]) -> Vec<(Suite, Vec<&Prep>)> {
    Suite::ALL
        .iter()
        .map(|&s| (s, preps.iter().filter(|p| p.suite == s).collect()))
        .collect()
}

/// A fixed-width table printer for experiment output.
#[derive(Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i.min(ncols - 1)]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Parses the common `--quick` flag (used by criterion wrappers and smoke
/// tests): quick mode caps simulated operations per run.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Applies the quick-mode operation cap to a configuration.
pub fn apply_quick(cfg: &mut SimConfig, quick: bool) {
    if quick {
        cfg.max_ops = 30_000;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 1.0);
        assert!((gmean(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "ipc"]);
        t.row(vec!["crafty.bits".into(), "2.10".into()]);
        t.row(vec!["mcf".into(), "0.27".into()]);
        let s = t.render();
        assert!(s.contains("crafty.bits"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn prep_end_to_end_on_one_workload() {
        let w = mg_workloads::by_name("bitcount").unwrap();
        let p = Prep::new(&w, &Input::tiny());
        assert!(p.total_dyn > 1_000);
        assert!(!p.candidates.is_empty(), "bitcount has fuseable chains");
        let sel = p.select(&Policy::integer());
        assert!(sel.coverage(p.total_dyn) > 0.05);

        let mut cfg = SimConfig::baseline();
        cfg.max_ops = 20_000;
        let base = p.run_baseline(&cfg);
        let mut mg_cfg = SimConfig::mg_integer();
        mg_cfg.max_ops = 20_000;
        let mg = p.run_selection(&sel, RewriteStyle::NopPadded, &mg_cfg);
        assert!(base.ipc() > 0.0);
        assert!(mg.handles > 0);
    }
}
