//! Experiment crate: the per-figure binaries (`fig5_coverage`,
//! `fig6_performance`, `fig7_serialization`, `fig8_regfile`,
//! `fig8_bandwidth`, `robustness`, `icache_effects`, `iq_capacity`),
//! the `perf_report` benchmark driver (times those sweeps and writes
//! `BENCH_pipeline.json`; see `EXPERIMENTS.md`), and the criterion
//! benches. The run matrices the binaries and `perf_report` share live
//! in [`experiments`].
//!
//! Each binary regenerates one table/figure of the paper's evaluation;
//! `EXPERIMENTS.md` records the measured output next to the paper's
//! numbers. The shared preparation and measurement machinery lives in
//! [`mg_harness`] (re-exported here): binaries build an
//! [`Engine`](mg_harness::Engine) over the registered workloads and fan
//! their (workload × policy × configuration) matrices out across
//! threads.
//!
//! All binaries accept `--quick` (or `MG_QUICK=1`) to cap simulated
//! operations per run, and `--threads N` to bound the fan-out.

pub mod experiments;

pub use mg_harness::*;
