//! The `mg chaos` subcommand: a seeded, self-checking resilience soak.
//!
//! `mg chaos` stands up an in-process `mg serve` daemon with a
//! deterministic [`FaultPlan`] armed across the whole stack — torn and
//! reset frame writes, delayed and interrupted reads, worker-closure
//! panics, prep-pool panics, cache write failures and post-write
//! corruption — then drives it with N concurrent retrying clients and
//! asserts three invariants the failure model promises
//! (see `docs/DESIGN.md` §9):
//!
//! 1. **No hang**: every client reaches a terminal outcome before the
//!    soak deadline, whatever the injected faults did to its
//!    connections.
//! 2. **Exactly-once preparation**: the warm-prep pool prepares each
//!    (workload, input) key once — injected prep panics are retried
//!    without duplicating a successful preparation (`preps_prepared`
//!    stays at the figure's focus-workload count).
//! 3. **Byte-identity**: every payload a client finally receives is
//!    byte-identical to the fault-free `mg run` output for the same
//!    request, computed in-process before the daemon starts.
//!
//! Fault decisions are a pure function of `(seed, point, hit index)` —
//! no wall clock, no global RNG — so a failing seed replays. Injection
//! rates are capped bursts chosen so the worst deterministic schedule
//! still fits inside the clients' retry budgets: the soak either proves
//! the invariants or fails loudly; it never flakes by construction.

use crate::cli::{self, Format, RunArgs};
use crate::serve_cli;
use crate::soak::{self, SoakJob, CLIENT_ATTEMPTS, SOAK_DEADLINE};
use mg_api::Session;
use mg_fault::{points, FaultPlan};
use mg_serve::{Client, Request, Response, RetryPolicy, RunRequest, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

/// Cap on fires per injected I/O fault point. Every I/O point is a
/// capped burst, so the total number of connection-killing events the
/// plan can ever produce stays below the clients' transport retry
/// budget ([`soak::CLIENT_ATTEMPTS`]) — a client cannot
/// deterministically run out of retries.
const BURST_CAP: u64 = 4;

/// Which fault families `--faults` arms.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Faults {
    /// Every family below.
    All,
    /// Connection-level read/write faults (`serve.read.*`,
    /// `serve.write.*`).
    Io,
    /// Worker-closure and prep-closure panics.
    Panic,
    /// Artifact-cache write failures and corruption.
    Cache,
    /// No injection — a plain concurrency soak.
    None,
}

impl Faults {
    fn parse(s: &str) -> Option<Faults> {
        match s {
            "all" => Some(Faults::All),
            "io" => Some(Faults::Io),
            "panic" => Some(Faults::Panic),
            "cache" => Some(Faults::Cache),
            "none" => Some(Faults::None),
            _ => None,
        }
    }
}

/// Builds the seeded plan for the selected fault families. I/O points
/// are capped bursts (see [`BURST_CAP`]); the prep panic is capped
/// below the pool's retry budget (`MAX_PREP_ATTEMPTS`) so a slot can
/// never be deterministically exhausted; cache faults are uncapped
/// (the cache absorbs them silently by design).
fn build_plan(seed: u64, faults: Faults) -> Option<Arc<FaultPlan>> {
    let mut plan = FaultPlan::new(seed);
    if matches!(faults, Faults::All | Faults::Io) {
        plan = plan
            .with_burst(points::SERVE_READ_INTERRUPT, 60, BURST_CAP)
            .with_burst(points::SERVE_READ_DELAY, 30, BURST_CAP)
            .with_burst(points::SERVE_READ_RESET, 40, BURST_CAP)
            .with_burst(points::SERVE_WRITE_TORN, 40, BURST_CAP)
            .with_burst(points::SERVE_WRITE_RESET, 40, BURST_CAP)
            .with_burst(points::SERVE_WRITE_STALL, 30, BURST_CAP);
    }
    if matches!(faults, Faults::All | Faults::Panic) {
        plan = plan.with_burst(points::WORKER_PANIC, 200, 3).with_burst(
            points::PREP_PANIC,
            300,
            2,
        );
    }
    if matches!(faults, Faults::All | Faults::Cache) {
        plan = plan.with(points::CACHE_WRITE_FAIL, 250).with(points::CACHE_CORRUPT, 250);
    }
    if faults == Faults::None {
        None
    } else {
        Some(Arc::new(plan))
    }
}

/// The request matrix every client walks: one figure, two renderings.
/// Distinct formats are distinct batches server-side; identical
/// requests from different clients coalesce — both paths get soaked.
fn request_matrix(quick: bool) -> Vec<(Format, RunRequest)> {
    [Format::Json, Format::Text]
        .into_iter()
        .map(|fmt| {
            let name = match fmt {
                Format::Json => "json",
                Format::Text => "text",
                Format::Csv => "csv",
                Format::Markdown => "markdown",
            };
            (
                fmt,
                RunRequest {
                    quick: Some(quick),
                    input: "tiny".into(),
                    format: name.into(),
                    ..RunRequest::new("fig7")
                },
            )
        })
        .collect()
}

/// The fault-free reference payloads, computed in-process through the
/// exact `mg run` code path (hermetic session: no cache, no pool
/// sharing with the daemon under test).
fn references(quick: bool) -> Vec<(Format, String)> {
    let args = RunArgs {
        quick: Some(quick),
        input: cli::parse_input("tiny").expect("tiny input"),
        no_cache: true,
        ..RunArgs::default()
    };
    let spec = cli::experiment("fig7").expect("fig7 registered");
    let report = (spec.build)(&args);
    request_matrix(quick).into_iter().map(|(fmt, _)| (fmt, cli::render(&report, fmt))).collect()
}

/// The matrix plus its references as [`SoakJob`]s for the shared
/// harness ([`soak::client_soak`]): every client walks the same jobs,
/// each carrying the byte-exact payload it must receive.
fn soak_jobs(quick: bool) -> Vec<SoakJob> {
    let refs = references(quick);
    request_matrix(quick)
        .into_iter()
        .map(|(fmt, request)| {
            let want = &refs.iter().find(|(f, _)| *f == fmt).expect("reference rendered").1;
            SoakJob {
                label: format!("{}/{fmt:?}", request.experiment),
                request,
                want: Some(Arc::new(want.clone())),
            }
        })
        .collect()
}

/// `mg chaos`: run the seeded fault-injection soak (see the module
/// docs). Exit status 0 when every invariant held.
pub fn cmd_chaos(argv: &[String]) -> i32 {
    let mut seed = 7u64;
    let mut clients = 4usize;
    let mut faults = Faults::All;
    let mut quick = true;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        let parsed: Result<(), String> = (|| {
            match a.as_str() {
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed requires an unsigned integer".to_string())?
                }
                "--clients" => {
                    clients =
                        value("--clients")?.parse().ok().filter(|n| *n >= 1).ok_or_else(
                            || "--clients requires a positive integer".to_string(),
                        )?
                }
                "--faults" => {
                    faults = Faults::parse(&value("--faults")?)
                        .ok_or_else(|| "--faults is all|io|panic|cache|none".to_string())?
                }
                "--duration-cycles" => {
                    quick = match value("--duration-cycles")?.as_str() {
                        "quick" => true,
                        "full" => false,
                        _ => return Err("--duration-cycles is quick|full".to_string()),
                    }
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            eprintln!("mg chaos: {e}");
            return 2;
        }
    }

    eprintln!("mg chaos: computing fault-free references (fig7, tiny)");
    let jobs = soak_jobs(quick);

    // The daemon under test: loopback TCP, a throwaway cache root (so
    // cache-fault injection exercises real stores), and the plan armed
    // through every layer — connection wrapper, worker closures, prep
    // pool, artifact cache.
    let plan = build_plan(seed, faults);
    let cache_dir =
        std::env::temp_dir().join(format!("mg-chaos-{seed}-{}", std::process::id()));
    let mut session = Session::builder().cache_dir(&cache_dir);
    if let Some(plan) = &plan {
        session = session.fault_plan(Arc::clone(plan));
    }
    let cfg = ServerConfig {
        slow_client_timeout: Duration::from_secs(2),
        faults: plan.clone(),
        ..ServerConfig::default()
    };
    let server = match serve_cli::bind_registry_server_with(
        "127.0.0.1:0",
        false,
        session.build(),
        cfg,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mg chaos: cannot bind loopback: {e}");
            return 1;
        }
    };
    let addr = server.local_addr().expect("tcp bind has an address").to_string();
    let handle = server.spawn();
    eprintln!("mg chaos: daemon on {addr}, seed {seed}, {clients} clients");

    // --- the soak: N concurrent clients under the shared harness's
    // hang watchdog (`soak::drive`) ---
    let mut failures = 0usize;
    let mut recovered_panics = 0u64;
    let driven = soak::drive(
        clients,
        SOAK_DEADLINE,
        |idx| {
            let client = Client::tcp(addr.clone());
            let jobs = jobs.clone();
            let policy = soak::retry_policy(seed, idx);
            Box::new(move || soak::client_soak(&client, &policy, &jobs))
        },
        |idx, result| match result {
            Ok(outcome) => {
                recovered_panics += outcome.recovered;
                eprintln!("mg chaos: client {idx} ok ({} panics recovered)", outcome.recovered);
            }
            Err(e) => {
                failures += 1;
                eprintln!("mg chaos: client {idx} FAILED: {e}");
            }
        },
    );
    if let Err(hang) = driven {
        eprintln!("mg chaos: {hang}");
        return 1;
    }

    // --- invariants visible from the outside: stats + graceful drain ---
    let stats_client = Client::tcp(addr.clone());
    let policy =
        RetryPolicy { attempts: CLIENT_ATTEMPTS, backoff_ms: 10, ..RetryPolicy::default() };
    let pairs = match stats_client.request_with_retry(&Request::Stats, &policy, |_| {}) {
        Ok(Response::Stats { pairs }) => pairs,
        other => {
            eprintln!("mg chaos: stats request failed: {other:?}");
            return 1;
        }
    };
    let stat = |name: &str| soak::stat(&pairs, name);
    let prepared = stat("preps_prepared");
    if prepared > 6 {
        failures += 1;
        eprintln!(
            "mg chaos: exactly-once preparation VIOLATED: {prepared} preps for 6 focus \
             workloads"
        );
    }

    // Graceful drain; a torn shutdown ack is itself a fault to survive —
    // the harness retries until acknowledged or the endpoint is gone
    // (= already down).
    if !soak::drain_endpoint(&stats_client) {
        eprintln!("mg chaos: drain shutdown was never acknowledged");
        return 1;
    }
    if let Err(e) = handle.join().expect("server thread") {
        eprintln!("mg chaos: server exited with error: {e}");
        return 1;
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    // --- summary ---
    if let Some(plan) = &plan {
        for (point, fired) in plan.report() {
            if fired > 0 {
                eprintln!("mg chaos: fault {point}: fired {fired}x");
            }
        }
    }
    eprintln!(
        "mg chaos: retried preps {}, expired {}, evicted slow clients {}, worker panics {}, \
         drained {}",
        stat("preps_retried"),
        stat("expired"),
        stat("evicted_slow_clients"),
        stat("worker_panics"),
        stat("drained_requests"),
    );
    if failures > 0 {
        println!(
            "mg chaos: seed {seed}: {failures} invariant violation(s) across {clients} clients"
        );
        return 1;
    }
    println!(
        "mg chaos: seed {seed}: all invariants held ({clients} clients, {} requests, \
         {recovered_panics} injected panics recovered)",
        clients * jobs.len(),
    );
    0
}
