//! The `mg serve` and `mg client` subcommands: the experiment registry
//! wired onto the generic `mg-serve` service.
//!
//! `mg serve` starts a long-running daemon that
//!
//! * validates incoming [`RunRequest`]s against the same registry
//!   `mg run` uses ([`crate::cli::experiments`]);
//! * executes them through the registry's report builders over one
//!   shared [`Session`] (and with it one warm-prep pool), so every
//!   client reuses one warm prep per (workload, input, trace budget,
//!   cache root) — the first request pays for preparation, later ones
//!   (from any client) skip it entirely;
//! * streams per-cell progress frames while a matrix runs (the engine's
//!   [`CellObserver`] forwarded as [`Response::Cell`] frames);
//! * batches field-for-field equal requests onto one execution and
//!   bounds its queue with a documented `Busy` reply (see
//!   `docs/PROTOCOL.md`).
//!
//! Served payloads are **byte-identical** to the stdout of the same
//! `mg run --format <fmt>` invocation (asserted by
//! `crates/bench/tests/serve.rs`), and — because preparation artifacts
//! come from the same pool + persistent cache — the harness's cold/warm
//! bit-identity guarantee extends to served results. The `perf`
//! experiment is deliberately **not served**: it writes
//! `BENCH_pipeline.json` into the daemon's working directory (which a
//! client cannot redirect, and concurrent runs would race on), and its
//! wall-clock timings would measure the daemon host under load rather
//! than the code — it stays a one-shot `mg run perf` tool.

use crate::cli::{self, Format, RunArgs};
use mg_api::{InputSelector, MgError, MgErrorKind, Session};
use mg_harness::{CellDone, CellObserver};
use mg_serve::{
    Client, EmitFn, Request, Response, RunOutcome, RunRequest, Runner, Server, ServerConfig,
};
use std::sync::Arc;

/// Default TCP endpoint of `mg serve` / `mg client`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4571";

/// Exit status of `mg client run` when the server replies `Busy`
/// (distinct from the statuses registry experiments actually return —
/// 0 and 1 — so scripts can key retries on it; a successful run exits
/// with the experiment's own status, exactly like `mg run`).
pub const EXIT_BUSY: i32 = 75; // EX_TEMPFAIL

/// Prints a client-side transport/protocol failure and returns the
/// documented `protocol` exit status (76; see `mg help`).
fn protocol_fail(what: &str, e: &dyn std::fmt::Display) -> i32 {
    eprintln!("mg client {what}: {e}");
    MgErrorKind::Protocol.exit_code()
}

/// Builds the daemon's [`Runner`]: registry validation plus experiment
/// execution over the shared [`Session`] — every request clones the one
/// session, so all clients share its warm-prep pool — with per-cell
/// streaming. Failures are typed [`MgError`]s; the wire flattens them to
/// `"<kind>: <message>"` Error frames.
pub fn registry_runner(session: Session) -> Runner {
    Arc::new(move |req: &RunRequest, emit: EmitFn| {
        run_request(&session, req, emit).map_err(|e| format!("{}: {e}", e.kind()))
    })
}

/// Executes one validated run request against `session` (the typed half
/// of [`registry_runner`]).
fn run_request(
    session: &Session,
    req: &RunRequest,
    emit: EmitFn,
) -> Result<RunOutcome, MgError> {
    let spec = cli::experiment(&req.experiment).ok_or_else(|| {
        MgError::invalid_spec(format!("unknown experiment {:?}", req.experiment))
    })?;
    let format = Format::parse(&req.format).ok_or_else(|| {
        MgError::invalid_spec(format!(
            "unknown format {:?} (text|json|csv|markdown)",
            req.format
        ))
    })?;
    let input = session.resolve_input(&InputSelector::Named(req.input.clone()))?;
    let progress: CellObserver = {
        let emit = Arc::clone(&emit);
        Arc::new(move |cell: &CellDone| {
            emit(Response::Cell {
                workload: cell.workload.clone(),
                label: cell.label.clone(),
                cycles: cell.cycles,
                ops: cell.ops,
            });
        })
    };
    let args = RunArgs {
        quick: req.quick,
        threads: req.threads.map(|n| n as usize),
        best: req.best,
        no_cache: req.no_cache,
        no_fuse: req.no_fuse,
        input,
        session: session.clone(),
        progress: Some(progress),
        ..RunArgs::default()
    };
    // A panicking builder must not take the worker thread (and every
    // batched client) down with it; surface it as a typed error.
    let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (spec.build)(&args)))
        .map_err(|panic| {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("experiment builder panicked");
            MgError::exec(format!("experiment {:?} failed: {msg}", req.experiment))
        })?;
    Ok(RunOutcome { status: report.status, payload: cli::render(&report, format) })
}

/// Constructs a ready-to-serve [`Server`] for the full experiment
/// registry (shared by `mg serve` and the in-process tests). `addr` is a
/// TCP address, or a Unix-socket path when `unix` is set.
pub fn bind_registry_server(
    addr: &str,
    unix: bool,
    workers: usize,
    max_queue: usize,
) -> std::io::Result<Server> {
    // One session for the daemon's lifetime: its warm-prep pool is what
    // every client shares, and its cache root (the default, unless a
    // request says --no-cache) is what served runs persist into.
    let session = Session::builder().cache(true).build();
    // Everything except `perf`: the perf driver writes
    // BENCH_pipeline.json (and a sweep cache) into the *daemon's* cwd —
    // a client cannot redirect it, concurrent runs would race on the
    // file, and its wall-clock numbers would measure the daemon host
    // under load rather than the code. It stays a one-shot `mg run
    // perf` tool.
    let experiments: Vec<String> = cli::experiments()
        .iter()
        .filter(|e| e.name != "perf")
        .map(|e| e.name.to_string())
        .collect();
    let pool = Arc::clone(session.pool());
    let runner = registry_runner(session);
    let stats_extra = Arc::new(move || {
        vec![
            ("preps_prepared".to_string(), pool.prepared()),
            ("preps_reused".to_string(), pool.reused()),
        ]
    });
    let cfg = ServerConfig {
        workers,
        max_queue,
        stats_extra: Some(stats_extra),
        ..ServerConfig::default()
    };
    if unix {
        Server::bind_unix(addr, experiments, runner, cfg)
    } else {
        Server::bind(addr, experiments, runner, cfg)
    }
}

struct EndpointArgs {
    addr: String,
    unix: bool,
}

impl Default for EndpointArgs {
    fn default() -> EndpointArgs {
        EndpointArgs { addr: DEFAULT_ADDR.to_string(), unix: false }
    }
}

impl EndpointArgs {
    fn client(&self) -> Client {
        if self.unix {
            Client::unix(&self.addr)
        } else {
            Client::tcp(&self.addr)
        }
    }
}

/// `mg serve`: run the experiment daemon until a client sends
/// `shutdown`.
pub fn cmd_serve(argv: &[String]) -> i32 {
    let mut endpoint = EndpointArgs::default();
    let mut workers = 2usize;
    let mut max_queue = 16usize;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        let parsed: Result<(), String> = (|| {
            match a.as_str() {
                "--addr" => endpoint.addr = value("--addr")?,
                "--socket" => {
                    endpoint.addr = value("--socket")?;
                    endpoint.unix = true;
                }
                "--workers" => {
                    workers =
                        value("--workers")?.parse().ok().filter(|n| *n >= 1).ok_or_else(
                            || "--workers requires a positive integer".to_string(),
                        )?
                }
                "--max-queue" => {
                    // A zero bound would Busy-reject every run forever.
                    max_queue =
                        value("--max-queue")?.parse().ok().filter(|n| *n >= 1).ok_or_else(
                            || "--max-queue requires a positive integer".to_string(),
                        )?
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            eprintln!("mg serve: {e}");
            return 2;
        }
    }
    let server = match bind_registry_server(&endpoint.addr, endpoint.unix, workers, max_queue) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mg serve: cannot bind {}: {e}", endpoint.addr);
            return 1;
        }
    };
    let shown =
        server.local_addr().map(|a| a.to_string()).unwrap_or_else(|| endpoint.addr.clone());
    eprintln!(
        "mg serve: listening on {shown} ({workers} workers, queue bound {max_queue}); \
         stop with `mg client shutdown`"
    );
    match server.serve() {
        Ok(()) => {
            eprintln!("mg serve: shut down cleanly");
            0
        }
        Err(e) => {
            eprintln!("mg serve: {e}");
            1
        }
    }
}

/// `mg client`: one-shot wire client (`run`, `ping`, `stats`,
/// `shutdown`).
pub fn cmd_client(argv: &[String]) -> i32 {
    let mut endpoint = EndpointArgs::default();
    let mut retry = 0u32;
    let mut run = RunRequest::new(String::new());
    let mut action: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        let parsed: Result<(), String> = (|| {
            match a.as_str() {
                "--addr" => endpoint.addr = value("--addr")?,
                "--socket" => {
                    endpoint.addr = value("--socket")?;
                    endpoint.unix = true;
                }
                "--retry" => {
                    retry = value("--retry")?
                        .parse()
                        .map_err(|_| "--retry requires a non-negative integer".to_string())?
                }
                "--quick" => run.quick = Some(true),
                "--full" => run.quick = Some(false),
                "--best" => run.best = true,
                "--no-cache" => run.no_cache = true,
                "--no-fuse" => run.no_fuse = true,
                "--threads" => {
                    run.threads = Some(
                        value("--threads")?
                            .parse()
                            .map_err(|_| "--threads requires a positive integer".to_string())?,
                    )
                }
                "--input" => run.input = value("--input")?,
                "--format" => run.format = value("--format")?,
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag:?}"));
                }
                pos if action.is_none() => action = Some(pos.to_string()),
                pos if action.as_deref() == Some("run") && run.experiment.is_empty() => {
                    run.experiment = pos.to_string()
                }
                pos => return Err(format!("unexpected argument {pos:?}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            eprintln!("mg client: {e}");
            return 2;
        }
    }
    let client = endpoint.client();
    match action.as_deref() {
        Some("ping") => {
            let mut attempt = 0;
            loop {
                match client.ping() {
                    Ok(protocol) => {
                        println!("pong (protocol {protocol})");
                        return 0;
                    }
                    Err(e) if attempt < retry => {
                        attempt += 1;
                        let _ = e;
                        std::thread::sleep(std::time::Duration::from_millis(200));
                    }
                    Err(e) => {
                        return protocol_fail("ping", &e);
                    }
                }
            }
        }
        Some("stats") => match client.request(&Request::Stats, |_| {}) {
            Ok(Response::Stats { pairs }) => {
                for (name, v) in pairs {
                    println!("{name} {v}");
                }
                0
            }
            Ok(other) => protocol_fail("stats", &format!("unexpected reply {other:?}")),
            Err(e) => protocol_fail("stats", &e),
        },
        Some("shutdown") => match client.request(&Request::Shutdown, |_| {}) {
            Ok(Response::Done { .. }) => {
                eprintln!("server acknowledged shutdown");
                0
            }
            Ok(other) => protocol_fail("shutdown", &format!("unexpected reply {other:?}")),
            Err(e) => protocol_fail("shutdown", &e),
        },
        Some("run") if !run.experiment.is_empty() => {
            let on_event = |event: &Response| match event {
                Response::Queued { position } => {
                    eprintln!("queued at position {position}");
                }
                Response::Cell { workload, label, cycles, ops } => {
                    eprintln!("cell {workload}/{label}: {cycles} cycles, {ops} ops");
                }
                _ => {}
            };
            match client.request(&Request::Run(run), on_event) {
                Ok(Response::Done { status, payload }) => {
                    print!("{payload}");
                    // Exit with the experiment's own status, exactly as
                    // `mg run` would (the OS truncates both identically).
                    status as i32
                }
                Ok(Response::Busy { depth, capacity }) => {
                    eprintln!(
                        "mg client run: server busy (queue {depth}/{capacity}); retry later"
                    );
                    EXIT_BUSY
                }
                Ok(Response::Error { message }) => {
                    eprintln!("mg client run: {message}");
                    1
                }
                Ok(other) => protocol_fail("run", &format!("unexpected reply {other:?}")),
                Err(e) => protocol_fail("run", &e),
            }
        }
        _ => {
            eprintln!(
                "mg client: expected `run <experiment>`, `ping`, `stats`, or `shutdown` \
                 (plus --addr HOST:PORT or --socket PATH)"
            );
            2
        }
    }
}
