//! The `mg serve` and `mg client` subcommands: the experiment registry
//! wired onto the generic `mg-serve` service.
//!
//! `mg serve` starts a long-running daemon that
//!
//! * validates incoming [`RunRequest`]s against the same registry
//!   `mg run` uses ([`crate::cli::experiments`]);
//! * executes them through the registry's report builders over one
//!   shared [`Session`] (and with it one warm-prep pool), so every
//!   client reuses one warm prep per (workload, input, trace budget,
//!   cache root) — the first request pays for preparation, later ones
//!   (from any client) skip it entirely;
//! * streams per-cell progress frames while a matrix runs (the engine's
//!   [`CellObserver`] forwarded as [`Response::Cell`] frames);
//! * batches field-for-field equal requests onto one execution and
//!   bounds its queue with a documented `Busy` reply (see
//!   `docs/PROTOCOL.md`).
//!
//! Served payloads are **byte-identical** to the stdout of the same
//! `mg run --format <fmt>` invocation (asserted by
//! `crates/bench/tests/serve.rs`), and — because preparation artifacts
//! come from the same pool + persistent cache — the harness's cold/warm
//! bit-identity guarantee extends to served results. The `perf`
//! experiment is deliberately **not served**: it writes
//! `BENCH_pipeline.json` into the daemon's working directory (which a
//! client cannot redirect, and concurrent runs would race on), and its
//! wall-clock timings would measure the daemon host under load rather
//! than the code — it stays a one-shot `mg run perf` tool.

use crate::cli::{self, Format, RunArgs};
use mg_api::{InputSelector, MgError, MgErrorKind, Session};
use mg_harness::{CellDone, CellObserver};
use mg_serve::{
    Client, EmitFn, Request, Response, RetryPolicy, RunOutcome, RunRequest, Runner, Server,
    ServerConfig,
};
use std::sync::Arc;
use std::time::Duration;

/// Default TCP endpoint of `mg serve` / `mg client`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4571";

/// Exit status of `mg client run` when the server replies `Busy`
/// (distinct from the statuses registry experiments actually return —
/// 0 and 1 — so scripts can key retries on it; a successful run exits
/// with the experiment's own status, exactly like `mg run`).
pub const EXIT_BUSY: i32 = 75; // EX_TEMPFAIL

/// Prints a client-side transport/protocol failure and returns the
/// documented `protocol` exit status (76; see `mg help`).
fn protocol_fail(what: &str, e: &dyn std::fmt::Display) -> i32 {
    eprintln!("mg client {what}: {e}");
    MgErrorKind::Protocol.exit_code()
}

/// Builds the daemon's [`Runner`]: registry validation plus experiment
/// execution over the shared [`Session`] — every request clones the one
/// session, so all clients share its warm-prep pool — with per-cell
/// streaming. Failures are typed [`MgError`]s; the wire flattens them to
/// `"<kind>: <message>"` Error frames.
pub fn registry_runner(session: Session) -> Runner {
    Arc::new(move |req: &RunRequest, emit: EmitFn| {
        run_request(&session, req, emit).map_err(|e| format!("{}: {e}", e.kind()))
    })
}

/// Executes one validated run request against `session` (the typed half
/// of [`registry_runner`]).
fn run_request(
    session: &Session,
    req: &RunRequest,
    emit: EmitFn,
) -> Result<RunOutcome, MgError> {
    let spec = cli::experiment(&req.experiment).ok_or_else(|| {
        MgError::invalid_spec(format!("unknown experiment {:?}", req.experiment))
    })?;
    let format = Format::parse(&req.format).ok_or_else(|| {
        MgError::invalid_spec(format!(
            "unknown format {:?} (text|json|csv|markdown)",
            req.format
        ))
    })?;
    let input = session.resolve_input(&InputSelector::Named(req.input.clone()))?;
    let progress: CellObserver = {
        let emit = Arc::clone(&emit);
        Arc::new(move |cell: &CellDone| {
            emit(Response::Cell {
                workload: cell.workload.clone(),
                label: cell.label.clone(),
                cycles: cell.cycles,
                ops: cell.ops,
            });
        })
    };
    let args = RunArgs {
        quick: req.quick,
        threads: req.threads.map(|n| n as usize),
        best: req.best,
        no_cache: req.no_cache,
        no_fuse: req.no_fuse,
        input,
        session: session.clone(),
        progress: Some(progress),
        ..RunArgs::default()
    };
    // A panicking builder must not take the worker thread (and every
    // batched client) down with it; surface it as a typed error.
    let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (spec.build)(&args)))
        .map_err(|panic| {
            let msg = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("experiment builder panicked");
            MgError::exec(format!("experiment {:?} failed: {msg}", req.experiment))
        })?;
    Ok(RunOutcome { status: report.status, payload: cli::render(&report, format) })
}

/// Constructs a ready-to-serve [`Server`] for the full experiment
/// registry (shared by `mg serve` and the in-process tests). `addr` is a
/// TCP address, or a Unix-socket path when `unix` is set.
pub fn bind_registry_server(
    addr: &str,
    unix: bool,
    workers: usize,
    max_queue: usize,
) -> std::io::Result<Server> {
    // One session for the daemon's lifetime: its warm-prep pool is what
    // every client shares, and its cache root (the default, unless a
    // request says --no-cache) is what served runs persist into.
    let session = Session::builder().cache(true).build();
    let cfg = ServerConfig { workers, max_queue, ..ServerConfig::default() };
    bind_registry_server_with(addr, unix, session, cfg)
}

/// [`bind_registry_server`] with an explicit [`Session`] and
/// [`ServerConfig`] — the entry point for deadline-configured daemons
/// and the fault-injecting `mg chaos` harness. The config's
/// `stats_extra` slot is claimed for the session pool's counters.
pub fn bind_registry_server_with(
    addr: &str,
    unix: bool,
    session: Session,
    mut cfg: ServerConfig,
) -> std::io::Result<Server> {
    // Everything except `perf`: the perf driver writes
    // BENCH_pipeline.json (and a sweep cache) into the *daemon's* cwd —
    // a client cannot redirect it, concurrent runs would race on the
    // file, and its wall-clock numbers would measure the daemon host
    // under load rather than the code. It stays a one-shot `mg run
    // perf` tool.
    let experiments: Vec<String> = cli::experiments()
        .iter()
        .filter(|e| e.name != "perf")
        .map(|e| e.name.to_string())
        .collect();
    let pool = Arc::clone(session.pool());
    let runner = registry_runner(session);
    cfg.stats_extra = Some(Arc::new(move || {
        vec![
            ("preps_prepared".to_string(), pool.prepared()),
            ("preps_reused".to_string(), pool.reused()),
            ("preps_retried".to_string(), pool.retried()),
        ]
    }));
    if unix {
        Server::bind_unix(addr, experiments, runner, cfg)
    } else {
        Server::bind(addr, experiments, runner, cfg)
    }
}

struct EndpointArgs {
    addr: String,
    unix: bool,
}

impl Default for EndpointArgs {
    fn default() -> EndpointArgs {
        EndpointArgs { addr: DEFAULT_ADDR.to_string(), unix: false }
    }
}

impl EndpointArgs {
    fn client(&self) -> Client {
        if self.unix {
            Client::unix(&self.addr)
        } else {
            Client::tcp(&self.addr)
        }
    }
}

/// `mg serve`: run the experiment daemon until a client sends
/// `shutdown`.
pub fn cmd_serve(argv: &[String]) -> i32 {
    let mut endpoint = EndpointArgs::default();
    let mut cfg = ServerConfig::default();
    fn positive(flag: &str, v: String) -> Result<usize, String> {
        v.parse()
            .ok()
            .filter(|n| *n >= 1)
            .ok_or_else(|| format!("{flag} requires a positive integer"))
    }
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        let parsed: Result<(), String> = (|| {
            match a.as_str() {
                "--addr" => endpoint.addr = value("--addr")?,
                "--socket" => {
                    endpoint.addr = value("--socket")?;
                    endpoint.unix = true;
                }
                "--workers" => cfg.workers = positive(a, value(a)?)?,
                // A zero bound would Busy-reject every run forever.
                "--max-queue" => cfg.max_queue = positive(a, value(a)?)?,
                "--queue-deadline-ms" => {
                    cfg.queue_deadline =
                        Some(Duration::from_millis(positive(a, value(a)?)? as u64))
                }
                "--run-deadline-ms" => {
                    cfg.run_deadline =
                        Some(Duration::from_millis(positive(a, value(a)?)? as u64))
                }
                "--drain-deadline-ms" => {
                    cfg.drain_deadline = Duration::from_millis(positive(a, value(a)?)? as u64)
                }
                "--slow-client-ms" => {
                    cfg.slow_client_timeout =
                        Duration::from_millis(positive(a, value(a)?)? as u64)
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            eprintln!("mg serve: {e}");
            return 2;
        }
    }
    let (workers, max_queue) = (cfg.workers, cfg.max_queue);
    let session = Session::builder().cache(true).build();
    let server = match bind_registry_server_with(&endpoint.addr, endpoint.unix, session, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mg serve: cannot bind {}: {e}", endpoint.addr);
            return 1;
        }
    };
    let shown =
        server.local_addr().map(|a| a.to_string()).unwrap_or_else(|| endpoint.addr.clone());
    eprintln!(
        "mg serve: listening on {shown} ({workers} workers, queue bound {max_queue}); \
         stop with `mg client shutdown`"
    );
    match server.serve() {
        Ok(()) => {
            eprintln!("mg serve: shut down cleanly");
            0
        }
        Err(e) => {
            eprintln!("mg serve: {e}");
            1
        }
    }
}

/// `mg client`: one-shot wire client (`run`, `ping`, `stats`,
/// `shutdown`).
pub fn cmd_client(argv: &[String]) -> i32 {
    let mut endpoint = EndpointArgs::default();
    let mut retry = 0u32;
    let mut backoff_ms: Option<u64> = None;
    let mut drain = true;
    let mut run = RunRequest::new(String::new());
    let mut action: Option<String> = None;
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        let parsed: Result<(), String> = (|| {
            match a.as_str() {
                "--addr" => endpoint.addr = value("--addr")?,
                "--socket" => {
                    endpoint.addr = value("--socket")?;
                    endpoint.unix = true;
                }
                "--retry" => {
                    retry = value("--retry")?
                        .parse()
                        .map_err(|_| "--retry requires a non-negative integer".to_string())?
                }
                "--backoff-ms" => {
                    backoff_ms = Some(value("--backoff-ms")?.parse().map_err(|_| {
                        "--backoff-ms requires a non-negative integer".to_string()
                    })?)
                }
                "--no-drain" => drain = false,
                "--quick" => run.quick = Some(true),
                "--full" => run.quick = Some(false),
                "--best" => run.best = true,
                "--no-cache" => run.no_cache = true,
                "--no-fuse" => run.no_fuse = true,
                "--threads" => {
                    run.threads = Some(
                        value("--threads")?
                            .parse()
                            .map_err(|_| "--threads requires a positive integer".to_string())?,
                    )
                }
                "--input" => run.input = value("--input")?,
                "--format" => run.format = value("--format")?,
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown flag {flag:?}"));
                }
                pos if action.is_none() => action = Some(pos.to_string()),
                pos if action.as_deref() == Some("run") && run.experiment.is_empty() => {
                    run.experiment = pos.to_string()
                }
                pos => return Err(format!("unexpected argument {pos:?}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            eprintln!("mg client: {e}");
            return 2;
        }
    }
    let client = endpoint.client();
    // `--retry N` means N retries on top of the first attempt; the
    // policy counts total attempts.
    let policy = RetryPolicy {
        attempts: retry.saturating_add(1),
        backoff_ms: backoff_ms.unwrap_or(200),
        ..RetryPolicy::default()
    };
    match action.as_deref() {
        Some("ping") => match client.request_with_retry(&Request::Ping, &policy, |_| {}) {
            Ok(Response::Pong { protocol }) => {
                println!("pong (protocol {protocol})");
                0
            }
            Ok(other) => protocol_fail("ping", &format!("unexpected reply {other:?}")),
            Err(e) => protocol_fail("ping", &e),
        },
        Some("stats") => match client.request_with_retry(&Request::Stats, &policy, |_| {}) {
            Ok(Response::Stats { pairs }) => {
                for (name, v) in pairs {
                    println!("{name} {v}");
                }
                0
            }
            Ok(other) => protocol_fail("stats", &format!("unexpected reply {other:?}")),
            Err(e) => protocol_fail("stats", &e),
        },
        Some("shutdown") => match client.request(&Request::Shutdown { drain }, |_| {}) {
            Ok(Response::Done { .. }) => {
                eprintln!("server acknowledged shutdown");
                0
            }
            Ok(other) => protocol_fail("shutdown", &format!("unexpected reply {other:?}")),
            Err(e) => protocol_fail("shutdown", &e),
        },
        Some("run") if !run.experiment.is_empty() => {
            let on_event = |event: &Response| match event {
                Response::Queued { position } => {
                    eprintln!("queued at position {position}");
                }
                Response::Cell { workload, label, cycles, ops } => {
                    eprintln!("cell {workload}/{label}: {cycles} cycles, {ops} ops");
                }
                _ => {}
            };
            match client.request_with_retry(&Request::Run(run), &policy, on_event) {
                Ok(Response::Done { status, payload }) => {
                    print!("{payload}");
                    // Exit with the experiment's own status, exactly as
                    // `mg run` would (the OS truncates both identically).
                    status as i32
                }
                Ok(Response::Busy { depth, capacity }) => {
                    eprintln!(
                        "mg client run: server busy (queue {depth}/{capacity}); retry later"
                    );
                    EXIT_BUSY
                }
                Ok(Response::Expired { phase, waited_ms, budget_ms }) => {
                    eprintln!(
                        "mg client run: {phase} deadline exceeded \
                         ({waited_ms}ms waited, {budget_ms}ms budget)"
                    );
                    MgErrorKind::Timeout.exit_code()
                }
                Ok(Response::Error { message }) => {
                    eprintln!("mg client run: {message}");
                    1
                }
                Ok(other) => protocol_fail("run", &format!("unexpected reply {other:?}")),
                Err(e) => protocol_fail("run", &e),
            }
        }
        _ => {
            eprintln!(
                "mg client: expected `run <experiment>`, `ping`, `stats`, or `shutdown` \
                 (plus --addr HOST:PORT or --socket PATH)"
            );
            2
        }
    }
}
