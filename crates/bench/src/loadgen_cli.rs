//! The `mg loadgen` subcommand: a seeded load generator for the shard
//! cluster, and the producer of the committed `BENCH_serve.json`
//! serving-latency trajectory.
//!
//! `mg loadgen` stands up an in-process [`mg_cluster::Cluster`] (each
//! shard an `mg serve` daemon over the full registry, with a
//! shard-private cache root reading through to one shared root) and
//! drives it with N concurrent retrying clients walking a seeded
//! request schedule:
//!
//! * **hot duplicates** (~70% of slots) repeat one cheap cell
//!   (`fig7`/`tiny`, json and text) so concurrent identical requests
//!   exercise batching and cross-client coalescing on the owning shard;
//! * **cold uniques** (~30%) draw from a small pool of distinct
//!   `(experiment, format)` cells so preparation, per-shard caches, and
//!   the shared read-through root all see work.
//!
//! The schedule is a pure function of `(seed, client, slot)` — no
//! clock, no global RNG — so the same seed replays the same request
//! multiset, and with `--shards 1` the cluster degenerates into a
//! single daemon whose every payload is byte-compared against the
//! sequential `mg run` output (the differential in
//! `crates/bench/tests/loadgen.rs`).
//!
//! After the soak a **warm verification wave** re-requests every
//! distinct cell once: payloads must still match, and (when no shard
//! was killed) the per-shard `preps_prepared` counters must not move —
//! the cluster-wide exactly-once preparation gate. With `--kill-shard`
//! the deterministic `cluster.shard.panic` fault point hard-kills one
//! shard mid-soak; every accepted request must still complete (the
//! coordinator reroutes, clients retry shutdown answers), which is the
//! zero-dropped-requests acceptance the resilience tests pin down.
//!
//! Results — throughput plus p50/p95/p99 client-observed latency for
//! the soak and the warm wave, and the cluster's routing/steal counters
//! — are written to `BENCH_serve.json` (schema `mg-serve-report-v1`),
//! the serving-side sibling of `BENCH_pipeline.json`.

use crate::cli::{self, Format, RunArgs};
use crate::serve_cli;
use crate::soak::{self, SoakJob};
use mg_api::Session;
use mg_cluster::{Cluster, ClusterConfig, ShardFactory};
use mg_fault::{points, FaultPlan};
use mg_serve::{Client, ServerConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock bound on the whole loadgen soak (looser than the chaos
/// deadline: hundreds of clients serialize onto a few coalescing
/// cells).
pub const LOADGEN_DEADLINE: Duration = Duration::from_secs(600);

/// The hot cell both hot slots share: the cheapest real registry
/// experiment, in the two renderings that coalesce as distinct batches.
const HOT: [(&str, Format); 2] = [("fig7", Format::Json), ("fig7", Format::Text)];

/// The cold pool: distinct cells that exercise preparation (a second
/// experiment) and per-shard routing (same prep key as the hot cell for
/// the fig7 rows — format is not part of the route key — plus fig5's
/// own key landing wherever the ring says).
const COLD: [(&str, Format); 4] = [
    ("fig7", Format::Csv),
    ("fig7", Format::Markdown),
    ("fig5", Format::Json),
    ("fig5", Format::Text),
];

/// `mg loadgen` configuration (the argv surface, test-constructible).
#[derive(Clone, Debug)]
pub struct LoadgenOpts {
    /// Schedule and jitter seed.
    pub seed: u64,
    /// Concurrent clients.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Shard count.
    pub shards: usize,
    /// Quick-mode runs (`--duration-cycles quick|full`).
    pub quick: bool,
    /// Arm `cluster.shard.panic` to hard-kill one shard mid-soak.
    pub kill_shard: bool,
    /// Where to write the `mg-serve-report-v1` document (`None`: skip).
    pub out: Option<PathBuf>,
}

impl Default for LoadgenOpts {
    fn default() -> LoadgenOpts {
        LoadgenOpts {
            seed: 7,
            clients: 16,
            requests: 4,
            shards: 3,
            quick: true,
            kill_shard: false,
            out: None,
        }
    }
}

/// One fixed-point round of splitmix64 — the schedule's only source of
/// pseudo-randomness, so a `(seed, client, slot)` triple always draws
/// the same cell.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded request schedule: for each client, `requests` cells drawn
/// ~70% from the hot pair and ~30% from the cold pool. Pure in `(seed,
/// clients, requests)`; the differential test replays it bit-for-bit.
pub fn schedule(
    seed: u64,
    clients: usize,
    requests: usize,
) -> Vec<Vec<(&'static str, Format)>> {
    (0..clients)
        .map(|c| {
            (0..requests)
                .map(|s| {
                    let r = splitmix(seed ^ ((c as u64) << 20) ^ s as u64);
                    if r % 10 < 7 {
                        HOT[(r / 10) as usize % HOT.len()]
                    } else {
                        COLD[(r / 10) as usize % COLD.len()]
                    }
                })
                .collect()
        })
        .collect()
}

/// The fault-free reference payloads for every distinct cell of
/// `plan`, computed in-process through the exact `mg run` code path
/// (hermetic session: no cache, no pool sharing with the cluster under
/// test). One report build per experiment, one rendering per format.
fn references(
    plan: &[Vec<(&'static str, Format)>],
    quick: bool,
) -> BTreeMap<(&'static str, Format), Arc<String>> {
    let mut reports: BTreeMap<&'static str, cli::Report> = BTreeMap::new();
    let mut refs = BTreeMap::new();
    for &(experiment, fmt) in plan.iter().flatten() {
        if refs.contains_key(&(experiment, fmt)) {
            continue;
        }
        let report = reports.entry(experiment).or_insert_with(|| {
            let args = RunArgs {
                quick: Some(quick),
                input: cli::parse_input("tiny").expect("tiny input"),
                no_cache: true,
                ..RunArgs::default()
            };
            let spec = cli::experiment(experiment).expect("registered experiment");
            (spec.build)(&args)
        });
        refs.insert((experiment, fmt), Arc::new(cli::render(report, fmt)));
    }
    refs
}

/// Turns one client's schedule row into harness jobs carrying their
/// reference payloads.
fn jobs_for(
    row: &[(&'static str, Format)],
    refs: &BTreeMap<(&'static str, Format), Arc<String>>,
    quick: bool,
) -> Vec<SoakJob> {
    row.iter()
        .map(|&(experiment, fmt)| SoakJob {
            label: format!("{experiment}/{fmt:?}"),
            request: mg_serve::RunRequest {
                quick: Some(quick),
                input: "tiny".into(),
                format: match fmt {
                    Format::Json => "json",
                    Format::Text => "text",
                    Format::Csv => "csv",
                    Format::Markdown => "markdown",
                }
                .into(),
                ..mg_serve::RunRequest::new(experiment)
            },
            want: Some(Arc::clone(&refs[&(experiment, fmt)])),
        })
        .collect()
}

/// Latency percentiles of one wave, in milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct Percentiles {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile (the tail the trajectory tracks).
    pub p99_ms: f64,
}

/// Throughput and latency of one wave of requests.
#[derive(Clone, Copy, Debug, Default)]
pub struct Wave {
    /// Requests completed.
    pub requests: usize,
    /// Wall-clock of the whole wave.
    pub wall_ms: f64,
    /// Completed requests per second of wall clock.
    pub rps: f64,
    /// Client-observed latency percentiles.
    pub lat: Percentiles,
    /// Transient terminal errors recovered by outer retries.
    pub recovered: u64,
}

/// Everything `mg loadgen` measured (and gates on).
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// The concurrent soak.
    pub soak: Wave,
    /// The sequential warm verification wave (every distinct cell once).
    pub verify: Wave,
    /// `preps_prepared` growth across the verification wave — must be
    /// zero unless a shard was killed (exactly-once preparation).
    pub prep_delta: u64,
    /// Final aggregated cluster stats (the front-socket `Stats` pairs).
    pub stats: Vec<(String, u64)>,
}

impl LoadgenReport {
    /// One aggregated counter (0 when absent).
    pub fn stat(&self, name: &str) -> u64 {
        soak::stat(&self.stats, name)
    }
}

/// `q`-th percentile (nearest-rank) of an already-sorted latency list.
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (sorted_ms.len() as f64 * q).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn wave(latencies: &mut [f64], wall: Duration, recovered: u64) -> Wave {
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let wall_ms = wall.as_secs_f64() * 1000.0;
    Wave {
        requests: latencies.len(),
        wall_ms,
        rps: if wall_ms > 0.0 { latencies.len() as f64 / (wall_ms / 1000.0) } else { 0.0 },
        lat: Percentiles {
            p50_ms: percentile(latencies, 0.50),
            p95_ms: percentile(latencies, 0.95),
            p99_ms: percentile(latencies, 0.99),
        },
        recovered,
    }
}

/// Sum of every shard's `preps_prepared` across the aggregated pairs.
fn total_preps(pairs: &[(String, u64)]) -> u64 {
    pairs.iter().filter(|(n, _)| n.ends_with(".preps_prepared")).map(|(_, v)| *v).sum()
}

/// Runs the whole loadgen soak in-process and returns the measured
/// report (the library entry behind `mg loadgen`; the differential test
/// drives it directly with `shards: 1`).
///
/// # Errors
///
/// The first violated invariant, or the cluster setup failure — in
/// either case the cluster has been torn down and the scratch cache
/// roots removed.
pub fn run_loadgen(opts: &LoadgenOpts) -> Result<LoadgenReport, String> {
    let plan = schedule(opts.seed, opts.clients.max(1), opts.requests.max(1));
    eprintln!(
        "mg loadgen: computing fault-free references ({} distinct cells)",
        plan.iter().flatten().collect::<std::collections::BTreeSet<_>>().len()
    );
    let refs = references(&plan, opts.quick);

    // The cluster under load: per-shard cache roots behind one shared
    // read-through root, all under a throwaway scratch directory.
    let scratch =
        std::env::temp_dir().join(format!("mg-loadgen-{}-{}", opts.seed, std::process::id()));
    let shared_root = scratch.join("shared");
    let factory: ShardFactory = {
        let scratch = scratch.clone();
        let shared_root = shared_root.clone();
        Arc::new(move |shard| {
            let session = Session::builder()
                .cache_dir(scratch.join(format!("shard{shard}")))
                .cache_fallback_dir(&shared_root)
                .build();
            let cfg = ServerConfig {
                workers: 2,
                slow_client_timeout: Duration::from_secs(2),
                ..ServerConfig::default()
            };
            serve_cli::bind_registry_server_with("127.0.0.1:0", false, session, cfg)
        })
    };
    let faults = opts.kill_shard.then(|| {
        // ~one fire per 25 routed runs, capped at a single kill: the
        // shard dies somewhere in the middle of the soak, once.
        Arc::new(FaultPlan::new(opts.seed).with_burst(points::SHARD_PANIC, 40, 1))
    });
    let cfg = ClusterConfig { shards: opts.shards.max(1), faults, ..ClusterConfig::default() };
    let cluster = Cluster::bind("127.0.0.1:0", factory, cfg)
        .map_err(|e| format!("cannot bind cluster: {e}"))?;
    let controller = cluster.controller();
    let addr = cluster.local_addr().expect("tcp bind has an address").to_string();
    let handle = cluster.spawn();
    eprintln!(
        "mg loadgen: cluster on {addr} ({} shards), seed {}, {} clients x {} requests{}",
        opts.shards.max(1),
        opts.seed,
        plan.len(),
        opts.requests.max(1),
        if opts.kill_shard { ", shard-kill armed" } else { "" }
    );

    let mut violations: Vec<String> = Vec::new();

    // --- the soak: N concurrent clients under the shared harness ---
    let soak_started = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let mut recovered = 0u64;
    let driven = soak::drive(
        plan.len(),
        LOADGEN_DEADLINE,
        |idx| {
            let client = Client::tcp(addr.clone());
            let jobs = jobs_for(&plan[idx], &refs, opts.quick);
            let policy = soak::retry_policy(opts.seed, idx);
            Box::new(move || soak::client_soak(&client, &policy, &jobs))
        },
        |idx, result| {
            if let Err(e) = result {
                eprintln!("mg loadgen: client {idx} FAILED: {e}");
            }
        },
    );
    let soak_wall = soak_started.elapsed();
    match driven {
        Ok(results) => {
            for (idx, result) in results {
                match result {
                    Ok(outcome) => {
                        recovered += outcome.recovered;
                        latencies
                            .extend(outcome.latencies.iter().map(|d| d.as_secs_f64() * 1000.0));
                    }
                    Err(e) => violations.push(format!("client {idx} dropped work: {e}")),
                }
            }
        }
        Err(hang) => violations.push(hang),
    }
    let soak_wave = wave(&mut latencies, soak_wall, recovered);

    // --- warm verification wave: every distinct cell once, preps must
    // not move (exactly-once preparation, cluster-wide) ---
    let preps_before = total_preps(&controller.stats_pairs());
    let distinct: Vec<(&'static str, Format)> = plan
        .iter()
        .flatten()
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let verify_jobs = jobs_for(&distinct, &refs, opts.quick);
    let verify_started = Instant::now();
    let verify_client = Client::tcp(addr.clone());
    let verify_policy = soak::retry_policy(opts.seed, plan.len());
    let mut verify_lat: Vec<f64> = Vec::new();
    let mut verify_recovered = 0u64;
    match soak::client_soak(&verify_client, &verify_policy, &verify_jobs) {
        Ok(outcome) => {
            verify_recovered = outcome.recovered;
            verify_lat.extend(outcome.latencies.iter().map(|d| d.as_secs_f64() * 1000.0));
        }
        Err(e) => violations.push(format!("warm verification wave failed: {e}")),
    }
    let verify_wave = wave(&mut verify_lat, verify_started.elapsed(), verify_recovered);
    let prep_delta = total_preps(&controller.stats_pairs()).saturating_sub(preps_before);
    if prep_delta > 0 && !opts.kill_shard {
        violations.push(format!(
            "exactly-once preparation VIOLATED: the warm wave added {prep_delta} preps"
        ));
    }

    // --- p99 sanity: the tail exists and sits inside the deadline ---
    if soak_wave.requests > 0 {
        let p = soak_wave.lat;
        if !(p.p50_ms > 0.0 && p.p50_ms <= p.p95_ms && p.p95_ms <= p.p99_ms) {
            violations.push(format!("nonsensical percentiles: {p:?}"));
        }
        if p.p99_ms >= LOADGEN_DEADLINE.as_secs_f64() * 1000.0 {
            violations.push(format!("p99 {}ms at or past the soak deadline", p.p99_ms));
        }
    }

    // --- teardown: graceful drain through the front socket ---
    let stats = controller.stats_pairs();
    if !soak::drain_endpoint(&Client::tcp(addr)) {
        violations.push("drain shutdown was never acknowledged".into());
    }
    match handle.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => violations.push(format!("cluster exited with error: {e}")),
        Err(_) => violations.push("cluster serve thread panicked".into()),
    }
    let _ = std::fs::remove_dir_all(&scratch);

    if violations.is_empty() {
        Ok(LoadgenReport { soak: soak_wave, verify: verify_wave, prep_delta, stats })
    } else {
        Err(violations.join("; "))
    }
}

/// Renders the `mg-serve-report-v1` document for `BENCH_serve.json`:
/// one row per wave (throughput + latency percentiles) and one row of
/// cluster counters — the serving-side trajectory committed next to
/// `BENCH_pipeline.json`.
pub fn render_serve_report(opts: &LoadgenOpts, report: &LoadgenReport) -> String {
    let row = |name: &str, w: &Wave| {
        format!(
            "    {{\"name\": \"{name}\", \"requests\": {}, \"wall_ms\": {:.1}, \
             \"rps\": {:.2}, \"p50_ms\": {:.1}, \"p95_ms\": {:.1}, \"p99_ms\": {:.1}, \
             \"recovered\": {}}}",
            w.requests, w.wall_ms, w.rps, w.lat.p50_ms, w.lat.p95_ms, w.lat.p99_ms, w.recovered
        )
    };
    format!(
        "{{\n  \"schema\": \"mg-serve-report-v1\",\n  \"mode\": \"{}\",\n  \
         \"seed\": {},\n  \"shards\": {},\n  \"clients\": {},\n  \"rows\": [\n{},\n{},\n    \
         {{\"name\": \"cluster\", \"routed\": {}, \"reroutes\": {}, \"steals\": {}, \
         \"shard_deaths\": {}, \"preps_prepared\": {}}}\n  ]\n}}\n",
        if opts.quick { "quick" } else { "full" },
        opts.seed,
        opts.shards,
        opts.clients,
        row("soak", &report.soak),
        row("warm_verify", &report.verify),
        report.stat("routed"),
        report.stat("reroutes"),
        report.stat("steals"),
        report.stat("shard_deaths"),
        total_preps(&report.stats),
    )
}

/// `mg loadgen`: run the seeded cluster soak (see the module docs).
/// Exit status 0 when every invariant held and the report (if
/// requested) was written.
pub fn cmd_loadgen(argv: &[String]) -> i32 {
    let mut opts =
        LoadgenOpts { out: Some(PathBuf::from("BENCH_serve.json")), ..LoadgenOpts::default() };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        fn positive(flag: &str, v: String) -> Result<usize, String> {
            v.parse()
                .ok()
                .filter(|n| *n >= 1)
                .ok_or_else(|| format!("{flag} requires a positive integer"))
        }
        let parsed: Result<(), String> = (|| {
            match a.as_str() {
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed requires an unsigned integer".to_string())?
                }
                "--clients" => opts.clients = positive(a, value(a)?)?,
                "--requests" => opts.requests = positive(a, value(a)?)?,
                "--shards" => opts.shards = positive(a, value(a)?)?,
                "--kill-shard" => opts.kill_shard = true,
                "--duration-cycles" => {
                    opts.quick = match value("--duration-cycles")?.as_str() {
                        "quick" => true,
                        "full" => false,
                        _ => return Err("--duration-cycles is quick|full".to_string()),
                    }
                }
                "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
                "--no-out" => opts.out = None,
                other => return Err(format!("unknown argument {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = parsed {
            eprintln!("mg loadgen: {e}");
            return 2;
        }
    }
    let report = match run_loadgen(&opts) {
        Ok(r) => r,
        Err(e) => {
            println!("mg loadgen: seed {}: FAILED: {e}", opts.seed);
            return 1;
        }
    };
    eprintln!(
        "mg loadgen: routed {}, reroutes {}, steals {}, shard deaths {}, preps {}",
        report.stat("routed"),
        report.stat("reroutes"),
        report.stat("steals"),
        report.stat("shard_deaths"),
        total_preps(&report.stats),
    );
    if let Some(out) = &opts.out {
        if let Err(e) = std::fs::write(out, render_serve_report(&opts, &report)) {
            eprintln!("mg loadgen: cannot write {}: {e}", out.display());
            return 1;
        }
        eprintln!("mg loadgen: wrote {}", out.display());
    }
    println!(
        "mg loadgen: seed {}: all invariants held ({} requests, {:.2} req/s, \
         p50 {:.0}ms p95 {:.0}ms p99 {:.0}ms, {} recovered)",
        opts.seed,
        report.soak.requests,
        report.soak.rps,
        report.soak.lat.p50_ms,
        report.soak.lat.p95_ms,
        report.soak.lat.p99_ms,
        report.soak.recovered,
    );
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The schedule is a pure function of its arguments: same seed,
    /// same multiset of requests, bit for bit; a different seed draws a
    /// different mix.
    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = schedule(7, 8, 16);
        assert_eq!(a, schedule(7, 8, 16));
        assert_ne!(a, schedule(8, 8, 16));
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|row| row.len() == 16));
        // The mix holds roughly: a majority of slots are hot cells.
        let hot = a.iter().flatten().filter(|cell| HOT.contains(cell)).count();
        assert!(hot * 10 >= 8 * 16 * 5, "hot share collapsed: {hot}/128");
        assert!(hot < 8 * 16, "cold cells must appear");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&[42.0], 0.99), 42.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn serve_report_renders_the_v1_schema() {
        let opts = LoadgenOpts::default();
        let report = LoadgenReport {
            soak: Wave {
                requests: 64,
                wall_ms: 2000.0,
                rps: 32.0,
                lat: Percentiles { p50_ms: 100.0, p95_ms: 400.0, p99_ms: 900.0 },
                recovered: 1,
            },
            ..LoadgenReport::default()
        };
        let doc = render_serve_report(&opts, &report);
        assert!(doc.contains("\"schema\": \"mg-serve-report-v1\""));
        assert!(doc.contains("\"name\": \"soak\""));
        assert!(doc.contains("\"name\": \"warm_verify\""));
        assert!(doc.contains("\"name\": \"cluster\""));
        assert!(doc.contains("\"p99_ms\": 900.0"));
    }
}
