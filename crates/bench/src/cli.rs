//! The unified `mg` experiment CLI.
//!
//! One binary drives the whole evaluation matrix:
//!
//! ```text
//! mg run <experiment> [--quick|--full] [--threads N] [--best]
//!                     [--no-cache] [--format text|json|csv|markdown]
//! mg list  [--format ...]           # the experiment registry
//! mg report [--write|--check] [--format ...]   # regenerate the docs
//! mg cache  [stats|clear|dir] [--format ...]   # the artifact cache
//! ```
//!
//! Every experiment builds a structured [`Report`] — a sequence of text
//! lines and typed tables — and the format renderers derive all four
//! output shapes from it. The **text** rendering is byte-identical to the
//! legacy per-figure binary for that experiment (`fig6_performance`,
//! `iq_capacity`, …): the legacy binaries are now three-line shims over
//! [`legacy_main`], kept for one release as deprecated aliases.
//!
//! `mg report` turns the documentation into a build product: it composes
//! `EXPERIMENTS.md` (every experiment's quick-mode output, which is
//! deterministic) and the quickstart block of `README.md` from the same
//! registry, writes them with `--write`, and verifies them with `--check`
//! (CI fails on drift).

use crate::figures;
use mg_api::{InputSelector, MgError, Session};
use mg_harness::{quick_mode, CellObserver, PrepCache, Table};
use mg_workloads::Input;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Output format of every subcommand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Format {
    /// Legacy plain text (byte-identical to the per-figure binaries).
    Text,
    /// One JSON document (`mg-report-v1`).
    Json,
    /// Tables only, comma-separated, with `# table:` separators.
    Csv,
    /// GitHub-flavoured markdown.
    Markdown,
}

impl Format {
    /// Parses a `--format` (or serve-request format) name.
    pub fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "csv" => Some(Format::Csv),
            "markdown" | "md" => Some(Format::Markdown),
            _ => None,
        }
    }
}

/// One table of a report: identified, typed, and renderable in every
/// format.
#[derive(Clone, Debug)]
pub struct TableBlock {
    /// Stable identifier (e.g. `"fig6.SPECint"`) for machine consumers.
    pub id: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (ragged rows allowed, as in the legacy tables).
    pub rows: Vec<Vec<String>>,
    /// Whether the text renderer skips this table (used by experiments
    /// whose legacy binaries print nothing to stdout, e.g. `perf`).
    pub hidden: bool,
}

/// One element of a report, in output order.
#[derive(Clone, Debug)]
pub enum Block {
    /// A verbatim text line (no trailing newline).
    Line(String),
    /// A table.
    Table(TableBlock),
}

/// A structured experiment report; the single source every output format
/// renders from.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// The experiment's registry name.
    pub experiment: String,
    /// Lines and tables, in output order.
    pub blocks: Vec<Block>,
    /// Process exit status (non-zero for e.g. a perf regression gate).
    pub status: i32,
}

impl Report {
    /// Creates an empty report for `experiment`.
    pub fn new(experiment: impl Into<String>) -> Report {
        Report { experiment: experiment.into(), blocks: Vec::new(), status: 0 }
    }

    /// Appends a text line.
    pub fn line(&mut self, s: impl Into<String>) {
        self.blocks.push(Block::Line(s.into()));
    }

    /// Appends an empty line followed by `s` (the `println!("\n…")`
    /// idiom of the legacy binaries).
    pub fn blank_then(&mut self, s: impl Into<String>) {
        self.line("");
        self.line(s);
    }

    /// Appends a table.
    pub fn table(&mut self, t: TableBlock) {
        self.blocks.push(Block::Table(t));
    }

    /// All tables, in order.
    pub fn tables(&self) -> impl Iterator<Item = &TableBlock> {
        self.blocks.iter().filter_map(|b| match b {
            Block::Table(t) => Some(t),
            Block::Line(_) => None,
        })
    }
}

impl TableBlock {
    /// Creates a table with the given id and column headers.
    pub fn new(id: impl Into<String>, columns: &[&str]) -> TableBlock {
        TableBlock {
            id: id.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            hidden: false,
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Marks the table as hidden from the text renderer.
    pub fn hidden(mut self) -> TableBlock {
        self.hidden = true;
        self
    }

    fn render_text(&self) -> String {
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        let mut t = Table::new(&cols);
        for r in &self.rows {
            t.row(r.clone());
        }
        t.render()
    }
}

/// Renders `report` exactly as the legacy binary printed it.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for b in &report.blocks {
        match b {
            Block::Line(l) => {
                out.push_str(l);
                out.push('\n');
            }
            Block::Table(t) if !t.hidden => out.push_str(&t.render_text()),
            Block::Table(_) => {}
        }
    }
    out
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders `report` as one `mg-report-v1` JSON document.
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"mg-report-v1\",\n");
    let _ = writeln!(out, "  \"experiment\": {},", json_str(&report.experiment));
    out.push_str("  \"blocks\": [\n");
    let mut first = true;
    for b in &report.blocks {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        match b {
            Block::Line(l) => {
                let _ = write!(out, "    {{\"type\": \"line\", \"text\": {}}}", json_str(l));
            }
            Block::Table(t) => {
                let cols: Vec<String> = t.columns.iter().map(|c| json_str(c)).collect();
                let _ = write!(
                    out,
                    "    {{\"type\": \"table\", \"id\": {}, \"columns\": [{}], \"rows\": [",
                    json_str(&t.id),
                    cols.join(", ")
                );
                for (i, r) in t.rows.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let cells: Vec<String> = r.iter().map(|c| json_str(c)).collect();
                    let _ = write!(out, "[{}]", cells.join(", "));
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Escapes one CSV field.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders every table of `report` as CSV, separated by `# table:` lines.
pub fn render_csv(report: &Report) -> String {
    let mut out = String::new();
    for t in report.tables() {
        let _ = writeln!(out, "# table: {}", t.id);
        let cols: Vec<String> = t.columns.iter().map(|c| csv_field(c)).collect();
        let _ = writeln!(out, "{}", cols.join(","));
        for r in &t.rows {
            let cells: Vec<String> = r.iter().map(|c| csv_field(c)).collect();
            let _ = writeln!(out, "{}", cells.join(","));
        }
    }
    out
}

/// Renders `report` as GitHub-flavoured markdown: `== x ==` lines become
/// `###` headings, `-- x --` lines `####` headings, tables become pipe
/// tables.
pub fn render_markdown(report: &Report) -> String {
    let mut out = String::new();
    for b in &report.blocks {
        match b {
            Block::Line(l) => {
                let l = l.trim_end();
                if let Some(h) = l.strip_prefix("== ").and_then(|s| s.strip_suffix(" ==")) {
                    let _ = writeln!(out, "### {h}");
                } else if let Some(h) =
                    l.strip_prefix("-- ").and_then(|s| s.strip_suffix(" --"))
                {
                    let _ = writeln!(out, "#### {h}");
                } else if l.is_empty() {
                    out.push('\n');
                } else {
                    let _ = writeln!(out, "{}", l.trim_start());
                }
            }
            Block::Table(t) => {
                let _ = writeln!(out, "\n| {} |", t.columns.join(" | "));
                let _ = writeln!(
                    out,
                    "|{}|",
                    t.columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
                );
                let width = t.columns.len();
                for r in &t.rows {
                    let mut cells: Vec<String> = r.clone();
                    while cells.len() < width {
                        cells.push(String::new());
                    }
                    let _ = writeln!(out, "| {} |", cells.join(" | "));
                }
                out.push('\n');
            }
        }
    }
    out
}

/// Renders `report` in `format`.
pub fn render(report: &Report, format: Format) -> String {
    match format {
        Format::Text => render_text(report),
        Format::Json => render_json(report),
        Format::Csv => render_csv(report),
        Format::Markdown => render_markdown(report),
    }
}

/// Arguments of `mg run` (and, restricted, of the legacy binaries).
#[derive(Clone)]
pub struct RunArgs {
    /// `--quick`/`--full` override; `None` means the experiment default
    /// (the `MG_QUICK` environment for the figures, quick for `perf`).
    pub quick: Option<bool>,
    /// `--threads N` worker override.
    pub threads: Option<usize>,
    /// `--best` (fig7 only): the §6.2 best-policy sweep.
    pub best: bool,
    /// `--no-cache`: disable the persistent artifact cache.
    pub no_cache: bool,
    /// `--no-fuse`: run sweep cells one configuration at a time instead
    /// of fused (results are bit-identical; this is a throughput
    /// escape hatch, also `MG_NO_FUSE=1`).
    pub no_fuse: bool,
    /// `--input reference|alternative|tiny`: the workload data set
    /// (default reference; `robustness` pins its own train/test pair).
    pub input: Input,
    /// `--out PATH` (perf only): report destination.
    pub out: String,
    /// `--baseline PATH` (perf only): regression-gate reference.
    pub baseline: Option<String>,
    /// `--max-regression X` (perf only): gate bound.
    pub max_regression: f64,
    /// `--min-fused-speedup X` (perf only): fail unless the fused fig8
    /// sweeps run at least `X` times faster than the scalar ones
    /// (`0` disables the gate; CI's perf-smoke job sets it).
    pub min_fused_speedup: f64,
    /// `--lang PATH` (lang only): an `.mgl` source file compiled and
    /// run alongside the built-in corpus.
    pub lang: Option<String>,
    /// The `mg_api` session the run executes against: owner of the
    /// warm-prep pool, cache root, and extension registries. One-shot
    /// `mg run` uses a fresh per-process session; `mg serve` clones one
    /// session into every request, which is what shares preps across
    /// clients.
    pub session: Session,
    /// Per-cell completion observer (`mg serve` streams these to
    /// clients).
    pub progress: Option<CellObserver>,
}

impl Default for RunArgs {
    fn default() -> RunArgs {
        RunArgs {
            quick: None,
            threads: None,
            best: false,
            no_cache: false,
            no_fuse: false,
            input: Input::reference(),
            out: "BENCH_pipeline.json".into(),
            baseline: None,
            max_regression: 3.0,
            min_fused_speedup: 0.0,
            lang: None,
            // The binaries' historical default: persistent artifact
            // cache on (at the default root) unless --no-cache.
            session: Session::builder().cache(true).build(),
            progress: None,
        }
    }
}

impl std::fmt::Debug for RunArgs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunArgs")
            .field("quick", &self.quick)
            .field("threads", &self.threads)
            .field("best", &self.best)
            .field("no_cache", &self.no_cache)
            .field("no_fuse", &self.no_fuse)
            .field("input", &self.input)
            .field("out", &self.out)
            .field("baseline", &self.baseline)
            .field("max_regression", &self.max_regression)
            .field("min_fused_speedup", &self.min_fused_speedup)
            .field("lang", &self.lang)
            .field("session", &self.session)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// Parses an `--input` / serve-request input name (the shared
/// [`InputSelector`] name table).
pub fn parse_input(name: &str) -> Option<Input> {
    InputSelector::resolve_named(name)
}

impl RunArgs {
    /// Whether this run is quick, applying the experiment default.
    pub fn is_quick(&self, default_quick: bool) -> bool {
        self.quick.unwrap_or_else(|| default_quick || quick_mode())
    }

    /// An engine builder configured from these arguments, built on the
    /// session's [`Session::engine_builder`] — the same code path the
    /// serve daemon and external embedders use — then specialized: quick
    /// per [`RunArgs::is_quick`] with a non-quick default, the session's
    /// cache unless `--no-cache`, the selected input, and the per-cell
    /// progress observer.
    pub fn engine(&self) -> mg_harness::EngineBuilder {
        let mut b = self.session.engine_builder().quick(self.is_quick(false)).input(self.input);
        if self.no_cache {
            b = b.cache(false);
        }
        if self.no_fuse {
            b = b.fuse(false);
        }
        if let Some(t) = self.threads {
            b = b.threads(t);
        }
        if let Some(obs) = &self.progress {
            b = b.observer(Arc::clone(obs));
        }
        b
    }
}

/// One registry entry: an experiment the CLI can run.
pub struct ExperimentSpec {
    /// Registry name (`mg run <name>`).
    pub name: &'static str,
    /// The deprecated per-figure binary this replaces.
    pub legacy_bin: &'static str,
    /// One-line description (shown by `mg list` and in the README).
    pub description: &'static str,
    /// Paper anchor (figure/section).
    pub paper_ref: &'static str,
    /// Builds the report.
    pub build: fn(&RunArgs) -> Report,
}

/// The experiment registry, in the paper's presentation order.
pub fn experiments() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec {
            name: "fig5",
            legacy_bin: "fig5_coverage",
            description:
                "Coverage sweeps: MGT capacity x max mini-graph size, all three panels",
            paper_ref: "Figure 5",
            build: figures::fig5,
        },
        ExperimentSpec {
            name: "fig6",
            legacy_bin: "fig6_performance",
            description: "Speedup of the four mini-graph machine configurations over baseline",
            paper_ref: "Figure 6",
            build: figures::fig6,
        },
        ExperimentSpec {
            name: "fig7",
            legacy_bin: "fig7_serialization",
            description: "Serialization/replay ablations (--best adds the per-benchmark sweep)",
            paper_ref: "Figure 7, §6.2",
            build: figures::fig7,
        },
        ExperimentSpec {
            name: "fig8_regfile",
            legacy_bin: "fig8_regfile",
            description: "Performance vs physical-register-file size",
            paper_ref: "Figure 8 (top)",
            build: figures::fig8_regfile,
        },
        ExperimentSpec {
            name: "fig8_bandwidth",
            legacy_bin: "fig8_bandwidth",
            description:
                "Bandwidth and scheduler-latency reductions, with and without mini-graphs",
            paper_ref: "Figure 8 (bottom)",
            build: figures::fig8_bandwidth,
        },
        ExperimentSpec {
            name: "robustness",
            legacy_bin: "robustness",
            description: "Cross-input coverage robustness (train/test input split)",
            paper_ref: "§6.1",
            build: figures::robustness,
        },
        ExperimentSpec {
            name: "icache",
            legacy_bin: "icache_effects",
            description: "Instruction-cache effects: nop-padded vs compressed images",
            paper_ref: "§6.2",
            build: figures::icache,
        },
        ExperimentSpec {
            name: "iq_capacity",
            legacy_bin: "iq_capacity",
            description: "Performance vs issue-queue size",
            paper_ref: "§6.3",
            build: figures::iq_capacity,
        },
        ExperimentSpec {
            name: "lang",
            legacy_bin: "",
            description:
                "mg-lang corpus (plus --lang FILE.mgl) compiled, verified three ways, simulated",
            paper_ref: "frontend",
            build: crate::lang::lang_report,
        },
        ExperimentSpec {
            name: "policy_lab",
            legacy_bin: "",
            description:
                "Selection-policy lab: greedy vs weighted/tiling/exact-DP with optimality gaps",
            paper_ref: "§4.2 extension",
            build: crate::policy_lab::policy_lab,
        },
        ExperimentSpec {
            name: "perf",
            legacy_bin: "perf_report",
            description: "Times every sweep, writes BENCH_pipeline.json, gates on regressions",
            paper_ref: "tooling",
            build: figures::perf,
        },
    ]
}

/// Looks up an experiment by registry name or legacy binary name.
/// (Newer experiments have no legacy alias — their `legacy_bin` is
/// empty and never matches.)
pub fn experiment(name: &str) -> Option<ExperimentSpec> {
    experiments()
        .into_iter()
        .find(|e| e.name == name || (!e.legacy_bin.is_empty() && e.legacy_bin == name))
}

/// Entry point of a deprecated per-figure binary: parses the binary's
/// historical argv, runs the experiment, and prints the text rendering —
/// byte-identical to the original main.
pub fn legacy_main(name: &str) {
    let spec = experiment(name).unwrap_or_else(|| panic!("unknown experiment {name:?}"));
    let args = if spec.name == "perf" {
        parse_legacy_perf_args()
    } else {
        let legacy = mg_harness::CliArgs::parse();
        RunArgs {
            quick: Some(legacy.quick),
            threads: legacy.threads,
            best: legacy.best,
            no_cache: legacy.no_cache,
            ..RunArgs::default()
        }
    };
    let report = (spec.build)(&args);
    print!("{}", render_text(&report));
    if report.status != 0 {
        std::process::exit(report.status);
    }
}

/// The historical `perf_report` argv: quick by default, plus the report
/// and regression-gate flags — parsed by the same [`parse_flags`] the
/// `mg` subcommands use (one parser to keep in sync), with the shim's
/// historical panic-on-bad-argument behaviour preserved.
fn parse_legacy_perf_args() -> RunArgs {
    let mut args = RunArgs { quick: Some(true), ..RunArgs::default() };
    let mut format = Format::Text;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_flags(&argv, &mut args, &mut format) {
        Ok(positional) if positional.is_empty() => args,
        Ok(positional) => panic!(
            "unknown argument {:?} (expected --quick, --full, --threads N, --out PATH, \
             --baseline PATH, or --max-regression X)",
            positional[0]
        ),
        Err(e) => panic!(
            "{e} (expected --quick, --full, --threads N, --out PATH, --baseline PATH, \
             or --max-regression X)"
        ),
    }
}

const USAGE: &str = "\
mg — unified experiment CLI for the mini-graphs reproduction

USAGE:
    mg run <experiment> [--quick|--full] [--threads N] [--best]
                        [--no-cache] [--no-fuse]
                        [--input reference|alternative|tiny]
                        [--format text|json|csv|markdown]
                        [--out PATH] [--baseline PATH] [--max-regression X]
                        [--min-fused-speedup X] [--lang FILE.mgl]
    mg compile <file.mgl> [--input reference|alternative|tiny] [--format ...]
    mg list   [--format ...]
    mg report [--write|--check] [--quick] [--threads N] [--no-cache] [--format ...]
    mg cache  [stats|clear|dir] [--format ...]
    mg serve  [--addr HOST:PORT | --socket PATH] [--workers N] [--max-queue N]
              [--queue-deadline-ms N] [--run-deadline-ms N]
              [--drain-deadline-ms N] [--slow-client-ms N]
    mg client (run <experiment> [run flags] | ping | stats | shutdown [--no-drain])
              [--addr HOST:PORT | --socket PATH] [--retry N] [--backoff-ms N]
    mg chaos  [--seed N] [--clients N] [--faults all|io|panic|cache|none]
              [--duration-cycles quick|full]
    mg cluster [--addr HOST:PORT] [--shards N] [--workers N] [--max-queue N]
    mg loadgen [--seed N] [--clients N] [--requests N] [--shards N]
               [--kill-shard] [--duration-cycles quick|full]
               [--out PATH | --no-out]
    mg help

Run `mg list` for the experiment registry. `mg run lang` pushes the
mg-lang regression corpus (plus `--lang FILE.mgl`) through compile /
three-way verification / simulation; `mg compile` prints one compiled
image (stats + disassembly). `mg serve` starts a
long-running daemon sharing one warm prep pool across clients; `mg
client run` returns byte-identical output to the same `mg run`
invocation (see docs/PROTOCOL.md). `mg cluster` runs N such daemons as
shards behind one consistent-hash coordinator on the same wire
protocol; `mg loadgen` soaks a fresh in-process cluster with seeded
concurrent clients and writes the latency trajectory to
BENCH_serve.json. The deprecated per-figure binaries
(fig6_performance, ...) are aliases for `mg run <experiment> --format
text` and print byte-identical output. Every subcommand is a thin
shell over the embeddable `mg_api::Session` (see docs/API.md).

EXIT STATUS (mg_api::MgErrorKind::exit_code; sysexits-style):
    0    success (or the experiment's own status)
    1    experiment-reported failure (e.g. the perf regression gate)
    2    argv usage error (unknown flag, missing value)
    64   invalid-spec: unknown experiment/workload/policy/input/format name
    65   parse:        bytes or text failed to decode
    70   exec:         a workload faulted, overran its budget, or panicked
    71   selection:    unsatisfiable selection policy
    72   rewrite:      rewritten image failed to execute
    73   cache:        artifact-cache failure (a corrupt file is a miss,
                       not an error; this is e.g. `mg cache clear` I/O)
    74   io:           file I/O failure (reports, baselines)
    75   busy:         `mg client run` backpressure (EX_TEMPFAIL; retry)
    76   protocol:     serve transport/handshake/version failure
    77   timeout:      a serve deadline expired (`Expired` frame) or a
                       retry budget ran out

The table is the full `mg_api` error-kind mapping; kinds a subcommand
cannot currently produce (exec/selection/rewrite surface through the
embeddable API and the daemon's typed Error frames, not `mg run`,
whose registry workloads are known-good) are listed for completeness.
";

/// Prints an [`MgError`] as `mg <cmd>: <error>` and returns its
/// documented exit status (the table in [`USAGE`]).
fn fail(cmd: &str, e: MgError) -> i32 {
    eprintln!("mg {cmd}: {e}");
    e.exit_code()
}

/// Entry point of the `mg` binary. Returns the process exit status.
pub fn mg_main() -> i32 {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprint!("{USAGE}");
        return 2;
    };
    match cmd.as_str() {
        "run" => cmd_run(&argv[1..]),
        "list" => cmd_list(&argv[1..]),
        "report" => cmd_report(&argv[1..]),
        "cache" => cmd_cache(&argv[1..]),
        "compile" => crate::lang::cmd_compile(&argv[1..]),
        "serve" => crate::serve_cli::cmd_serve(&argv[1..]),
        "client" => crate::serve_cli::cmd_client(&argv[1..]),
        "chaos" => crate::chaos_cli::cmd_chaos(&argv[1..]),
        "cluster" => crate::cluster_cli::cmd_cluster(&argv[1..]),
        "loadgen" => crate::loadgen_cli::cmd_loadgen(&argv[1..]),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            0
        }
        other => {
            eprintln!("mg: unknown command {other:?}\n");
            eprint!("{USAGE}");
            2
        }
    }
}

/// A flag-parsing failure: a malformed argv (classic usage error, exit
/// 2) or a well-formed flag naming an unknown thing (a typed
/// [`MgError`] with the documented exit code — the same classification
/// the serve runner gives the identical mistake on the wire).
enum FlagError {
    Usage(String),
    Spec(MgError),
}

impl FlagError {
    /// Prints the error as `mg <cmd>: …` and returns its exit status.
    fn exit(self, cmd: &str) -> i32 {
        match self {
            FlagError::Usage(msg) => {
                eprintln!("mg {cmd}: {msg}");
                2
            }
            FlagError::Spec(e) => fail(cmd, e),
        }
    }
}

impl From<String> for FlagError {
    fn from(msg: String) -> FlagError {
        FlagError::Usage(msg)
    }
}

impl std::fmt::Display for FlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlagError::Usage(msg) => f.write_str(msg),
            FlagError::Spec(e) => write!(f, "{e}"),
        }
    }
}

/// Parses the flags shared by `run`/`report` plus a format; returns
/// leftover positional arguments.
fn parse_flags(
    argv: &[String],
    args: &mut RunArgs,
    format: &mut Format,
) -> Result<Vec<String>, FlagError> {
    let mut positional = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} requires a value"));
        match a.as_str() {
            "--quick" => args.quick = Some(true),
            "--full" => args.quick = Some(false),
            "--best" => args.best = true,
            "--no-cache" => args.no_cache = true,
            "--no-fuse" => args.no_fuse = true,
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|_| "--threads requires a positive integer".to_string())?,
                )
            }
            "--format" => {
                let v = value("--format")?;
                *format = Format::parse(&v).ok_or_else(|| {
                    FlagError::Spec(MgError::invalid_spec(format!(
                        "unknown format {v:?} (text|json|csv|markdown)"
                    )))
                })?;
            }
            "--input" => {
                let v = value("--input")?;
                args.input = parse_input(&v).ok_or_else(|| {
                    FlagError::Spec(MgError::invalid_spec(format!(
                        "unknown input {v:?} (reference|alternative|tiny)"
                    )))
                })?;
            }
            "--lang" => args.lang = Some(value("--lang")?),
            "--out" => args.out = value("--out")?,
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--max-regression" => {
                args.max_regression = value("--max-regression")?
                    .parse()
                    .map_err(|_| "--max-regression requires a number".to_string())?
            }
            "--min-fused-speedup" => {
                args.min_fused_speedup = value("--min-fused-speedup")?
                    .parse()
                    .map_err(|_| "--min-fused-speedup requires a number".to_string())?
            }
            flag if flag.starts_with("--") => {
                return Err(FlagError::Usage(format!("unknown flag {flag:?}")));
            }
            pos => positional.push(pos.to_string()),
        }
    }
    Ok(positional)
}

fn cmd_run(argv: &[String]) -> i32 {
    let mut args = RunArgs::default();
    let mut format = Format::Text;
    let positional = match parse_flags(argv, &mut args, &mut format) {
        Ok(p) => p,
        Err(e) => return e.exit("run"),
    };
    let [name] = positional.as_slice() else {
        eprintln!("mg run: expected exactly one experiment name; see `mg list`");
        return 2;
    };
    let Some(spec) = experiment(name) else {
        return fail(
            "run",
            MgError::invalid_spec(format!("unknown experiment {name:?}; see `mg list`")),
        );
    };
    let report = (spec.build)(&args);
    print!("{}", render(&report, format));
    report.status
}

fn cmd_list(argv: &[String]) -> i32 {
    let mut args = RunArgs::default();
    let mut format = Format::Text;
    if let Err(e) = parse_flags(argv, &mut args, &mut format) {
        return e.exit("list");
    }
    let mut report = Report::new("list");
    report.line("== Experiments (mg run <name>) ==");
    let mut t = TableBlock::new("list", &["name", "paper", "deprecated alias", "description"]);
    for e in experiments() {
        t.row(vec![
            e.name.to_string(),
            e.paper_ref.to_string(),
            if e.legacy_bin.is_empty() { "-".to_string() } else { e.legacy_bin.to_string() },
            e.description.to_string(),
        ]);
    }
    report.table(t);
    print!("{}", render(&report, format));
    0
}

fn cmd_cache(argv: &[String]) -> i32 {
    let mut args = RunArgs::default();
    let mut format = Format::Text;
    let positional = match parse_flags(argv, &mut args, &mut format) {
        Ok(p) => p,
        Err(e) => return e.exit("cache"),
    };
    let action = positional.first().map(String::as_str).unwrap_or("stats");
    let cache = PrepCache::new(PrepCache::default_root());
    match action {
        "dir" => {
            println!("{}", cache.root().display());
            0
        }
        "clear" => match cache.clear() {
            Ok(()) => {
                println!("cleared {}", cache.root().display());
                0
            }
            Err(e) => fail(
                "cache clear",
                MgError::cache(format!("cannot clear {}: {e}", cache.root().display()))
                    .with_source(e),
            ),
        },
        "stats" => {
            let s = cache.stats();
            let mut report = Report::new("cache");
            report.line(format!("== Artifact cache at {} ==", cache.root().display()));
            let mut t = TableBlock::new("cache.stats", &["kind", "files"]);
            t.row(vec!["selections".into(), s.selections.to_string()]);
            t.row(vec!["traces".into(), s.traces.to_string()]);
            t.row(vec!["images".into(), s.images.to_string()]);
            t.row(vec!["other".into(), s.other.to_string()]);
            t.row(vec!["total bytes".into(), s.bytes.to_string()]);
            report.table(t);
            print!("{}", render(&report, format));
            0
        }
        other => fail(
            "cache",
            MgError::invalid_spec(format!("unknown action {other:?} (stats|clear|dir)")),
        ),
    }
}

/// The experiments `mg report` documents, in order. `perf` is excluded:
/// its output is wall-clock timings, which are machine-dependent and
/// would make the generated docs non-reproducible.
///
/// Each builder constructs its own engine — ~9 preparation passes per
/// report, exactly like running the nine binaries did. That redundancy
/// is deliberate: fig7 prepares only its focus subset, robustness
/// prepares two different inputs, and per-builder engines are what
/// keep every experiment's output byte-identical to its standalone
/// `mg run` (and legacy binary) invocation.
const REPORT_EXPERIMENTS: &[&str] = &[
    "fig5",
    "fig6",
    "fig7",
    "fig8_regfile",
    "fig8_bandwidth",
    "robustness",
    "icache",
    "iq_capacity",
    "lang",
    "policy_lab",
];

/// Marker opening the generated quickstart block in `README.md`.
pub const README_BEGIN: &str =
    "<!-- mg:quickstart:begin (generated by `mg report --write`) -->";
/// Marker closing the generated quickstart block in `README.md`.
pub const README_END: &str = "<!-- mg:quickstart:end -->";

/// The repository root (the bench crate lives at `crates/bench`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Composes the generated `EXPERIMENTS.md`: prose plus each experiment's
/// quick-mode text output (deterministic across machines and thread
/// counts) in fenced blocks.
pub fn compose_experiments_md(args: &RunArgs) -> String {
    let mut out = String::from(
        "# Experiment log\n\
         \n\
         <!-- GENERATED FILE. Regenerate with:\n\
         `cargo run --release -p mg-bench --bin mg -- report --write`\n\
         (CI checks this file against the regenerated output and fails on drift.) -->\n\
         \n\
         Output of every experiment in **quick mode** (`--quick`: 30k simulated\n\
         ops per run, tiny fractions of the full traces) on the reference\n\
         input. Quick-mode results are deterministic — independent of the\n\
         machine and the `--threads` fan-out — which is what lets this file be\n\
         a build product. Full-size runs drop `--quick`; numbers below are for\n\
         orientation and CI smoke checks, not for quoting. See `DESIGN.md` §2\n\
         for why absolute values differ from the paper while the trends are\n\
         the reproduction target, and `DESIGN.md` §5 for the CLI and the\n\
         artifact cache that make regenerating this file cheap.\n\
         \n\
         Regenerate any one section with\n\
         `cargo run --release -p mg-bench --bin mg -- run <name> --quick`.\n\
         \n\
         ## Performance trajectory — `mg run perf` and `BENCH_pipeline.json`\n\
         \n\
         `cargo run --release -p mg-bench --bin mg -- run perf` times every\n\
         figure experiment (a fresh engine plus the shared run matrix from\n\
         `mg_bench::experiments`, with the artifact cache off so the numbers\n\
         track real compute) and a synthetic selection stress case, then\n\
         writes `BENCH_pipeline.json`:\n\
         \n\
         * `wall_ms` = `prep_ms` (engine build: profile + enumerate) +\n\
           `run_ms` (the simulation matrix, or pure selection for\n\
           `fig5_coverage` / `select_stress`);\n\
         * `mcycles_per_s` — simulated megacycles per second of run time, the\n\
           simulator hot-loop health metric (omitted for selection-only rows\n\
           like `fig5_coverage` / `select_stress`, which simulate nothing);\n\
         * `mops_per_s` — committed fetched operations per second (instances\n\
           chosen per second for the selection rows);\n\
         * `fig8_fused` / `fused_speedup` — both Figure 8 sweeps re-run as\n\
           one **fused** pass (`--no-fuse` / `MG_NO_FUSE=1` disables fusion;\n\
           the per-experiment rows above are always measured with fusion\n\
           off so they track scalar compute): the `speedup` field is the\n\
           fused-over-scalar throughput ratio, gated in CI by\n\
           `--min-fused-speedup`;\n\
         * `artifacts_cold` / `artifacts_warm` — one full artifact sweep\n\
           (every selection, baseline trace, and rewritten image) against an\n\
           empty and then a warm persistent cache: the cold/warm gap is the\n\
           recomputation the cache saves.\n\
         \n\
         Timings are machine- and thread-count-dependent, so they are *not*\n\
         part of this generated file; the committed `BENCH_pipeline.json` is\n\
         the trajectory. CI's `perf-smoke` job re-runs\n\
         `mg run perf --quick --baseline BENCH_pipeline.json --max-regression 3`\n\
         and fails on any >3x wall-clock regression — a loose bound that\n\
         catches wedges, not runner noise. Refresh the committed file from the\n\
         CI job's uploaded artifact (not a dev machine) when the simulator\n\
         legitimately changes speed class.\n",
    );
    for name in REPORT_EXPERIMENTS {
        let spec = experiment(name).expect("registry name");
        let mut run_args = args.clone();
        run_args.quick = Some(true);
        let report = (spec.build)(&run_args);
        let _ = write!(
            out,
            "\n## {} — {} (quick mode)\n\n```\n{}```\n",
            spec.paper_ref,
            spec.description,
            render_text(&report)
        );
    }
    out
}

/// Composes the generated quickstart block for `README.md` (between
/// [`README_BEGIN`] and [`README_END`]).
pub fn compose_readme_block() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{README_BEGIN}");
    out.push_str(
        "Each experiment regenerates one table/figure of the paper's\n\
         evaluation (sample output in [`EXPERIMENTS.md`](EXPERIMENTS.md),\n\
         itself generated by `mg report --write`):\n\n```sh\n",
    );
    let specs = experiments();
    let width = specs.iter().map(|e| e.name.len()).max().unwrap_or(0);
    for e in &specs {
        let _ = writeln!(
            out,
            "cargo run --release -p mg-bench --bin mg -- run {:<width$}  # {}: {}",
            e.name, e.paper_ref, e.description
        );
    }
    out.push_str(
        "```\n\n\
         Useful flags (every experiment): `--quick` caps simulated ops per run\n\
         (also `MG_QUICK=1`), `--threads N` bounds the fan-out (also\n\
         `MG_THREADS`), `--no-cache` disables the persistent artifact cache\n\
         under `target/mg-cache/` (also `MG_NO_CACHE=1`), `--no-fuse` runs\n\
         sweep cells one configuration at a time instead of fused (also\n\
         `MG_NO_FUSE=1`; results are bit-identical either way), and\n\
         `--format text|json|csv|markdown` selects the output shape.\n\
         `mg list` prints this registry; `mg cache stats|clear|dir` manages\n\
         the artifact cache.\n\n\
         The per-figure binaries of earlier releases are **deprecated\n\
         aliases** kept for one release; each is a shim over the same code\n\
         and prints byte-identical output:\n\n",
    );
    let aliased: Vec<_> = specs.iter().filter(|e| !e.legacy_bin.is_empty()).collect();
    let bin_width = aliased.iter().map(|e| e.legacy_bin.len()).max().unwrap_or(0);
    for e in &aliased {
        let pad = " ".repeat(bin_width - e.legacy_bin.len());
        let _ = writeln!(out, "* `{}`{pad} → `mg run {}`", e.legacy_bin, e.name);
    }
    let _ = write!(
        out,
        "\n### Serving experiments — `mg serve` and `mg client`\n\n\
         For repeated sweeps and multi-client use, `mg serve` runs the same\n\
         registry as a long-running daemon sharing one warm prep pool across\n\
         all clients (default endpoint `{addr}`):\n\n\
         ```sh\n\
         cargo run --release -p mg-bench --bin mg -- serve &\n\
         cargo run --release -p mg-bench --bin mg -- client ping --retry 50\n\
         cargo run --release -p mg-bench --bin mg -- client run fig6 --quick --format json\n\
         cargo run --release -p mg-bench --bin mg -- client stats\n\
         cargo run --release -p mg-bench --bin mg -- client shutdown\n\
         ```\n\n\
         A served `run` prints byte-identical output to the same `mg run`\n\
         invocation, streams per-cell progress to stderr while the matrix\n\
         runs, and coalesces identical concurrent requests onto one\n\
         execution; a full queue answers `Busy` (exit 75, retry later).\n\
         `--socket PATH` serves a Unix socket instead of TCP. The wire\n\
         protocol (framing, every request/response variant, versioning tied\n\
         to the cache schema) is specified in\n\
         [`docs/PROTOCOL.md`](docs/PROTOCOL.md); the request lifecycle is\n\
         diagrammed in [`docs/ARCHITECTURE.md`](docs/ARCHITECTURE.md).\n\n\
         To scale the daemon out, `mg cluster --shards 3` runs three such\n\
         servers behind one coordinator speaking the same protocol\n\
         (default endpoint `{cluster_addr}`): runs are routed to shards by\n\
         their preparation key over a consistent-hash ring (so identical\n\
         requests keep coalescing), idle shards steal queued batches from\n\
         busy peers, per-shard cache roots read through to the shared\n\
         root, and a dead shard's keys fail over to its ring successor.\n\
         `mg loadgen --seed 7 --clients 100 --shards 3` soaks a fresh\n\
         in-process cluster with seeded concurrent retrying clients\n\
         (hot duplicates + cold uniques), byte-checks every payload\n\
         against `mg run`, enforces cluster-wide exactly-once preparation\n\
         and a graceful drain, and writes throughput + p50/p95/p99\n\
         latency to [`BENCH_serve.json`](BENCH_serve.json); add\n\
         `--kill-shard` to hard-kill one shard mid-soak and prove no\n\
         accepted request is dropped.\n\n\
         ### Embedding — `mg_api::Session`\n\n\
         Everything above is a thin shell over the typed, embeddable\n\
         session API: `mg run`, the daemon's runner, and out-of-tree\n\
         consumers all drive the same `mg_api::Session` (`RunSpec` in,\n\
         structured `RunOutcome`/`MgError` out; distinct exit codes per\n\
         error kind, listed by `mg help`). The embedding guide is\n\
         [`docs/API.md`](docs/API.md); `examples/embed.rs` registers a\n\
         custom workload through the `WorkloadSource` trait and runs it\n\
         next to a registry kernel:\n\n\
         ```sh\n\
         cargo run --release --example embed\n\
         ```\n",
        addr = crate::serve_cli::DEFAULT_ADDR,
        cluster_addr = crate::cluster_cli::DEFAULT_ADDR,
    );
    let _ = writeln!(out, "{README_END}");
    out
}

/// Replaces the generated block of `readme` with `block`; `None` if the
/// markers are missing or out of order.
pub fn splice_readme(readme: &str, block: &str) -> Option<String> {
    let begin = readme.find(README_BEGIN)?;
    let end_at = readme.find(README_END)?;
    let end = end_at + README_END.len();
    if end_at < begin {
        return None;
    }
    let mut out = String::with_capacity(readme.len() + block.len());
    out.push_str(&readme[..begin]);
    out.push_str(block.trim_end());
    out.push_str(&readme[end..]);
    Some(out)
}

fn cmd_report(argv: &[String]) -> i32 {
    let mut args = RunArgs::default();
    let mut format = Format::Markdown;
    let mut mode = "print";
    let mut rest = Vec::new();
    for a in argv {
        match a.as_str() {
            "--write" => mode = "write",
            "--check" => mode = "check",
            other => rest.push(other.to_string()),
        }
    }
    if let Err(e) = parse_flags(&rest, &mut args, &mut format) {
        return e.exit("report");
    }

    if mode == "print" && format != Format::Markdown {
        // Non-markdown report: every experiment in the requested format.
        // JSON wraps the per-experiment documents in one array so the
        // stream stays a single parseable document; text and CSV
        // concatenate (CSV keeps its `# table:` separators).
        let reports = REPORT_EXPERIMENTS.iter().map(|name| {
            let spec = experiment(name).expect("registry name");
            let mut run_args = args.clone();
            run_args.quick = Some(true);
            (spec.build)(&run_args)
        });
        if format == Format::Json {
            let docs: Vec<String> = reports
                .map(|r| {
                    let doc = render_json(&r);
                    // Indent each document two spaces to sit inside the array.
                    let indented: Vec<String> =
                        doc.trim_end().lines().map(|l| format!("  {l}")).collect();
                    indented.join("\n")
                })
                .collect();
            println!("[\n{}\n]", docs.join(",\n"));
        } else {
            for report in reports {
                print!("{}", render(&report, format));
            }
        }
        return 0;
    }

    let experiments_md = compose_experiments_md(&args);
    let readme_block = compose_readme_block();
    let root = repo_root();
    let experiments_path = root.join("EXPERIMENTS.md");
    let readme_path = root.join("README.md");

    match mode {
        "print" => {
            print!("{experiments_md}");
            0
        }
        "write" => {
            if let Err(e) = std::fs::write(&experiments_path, &experiments_md) {
                let msg = format!("cannot write {}: {e}", experiments_path.display());
                return fail("report", MgError::io(msg).with_source(e));
            }
            eprintln!("wrote {}", experiments_path.display());
            let readme = match std::fs::read_to_string(&readme_path) {
                Ok(r) => r,
                Err(e) => {
                    let msg = format!("cannot read {}: {e}", readme_path.display());
                    return fail("report", MgError::io(msg).with_source(e));
                }
            };
            let Some(spliced) = splice_readme(&readme, &readme_block) else {
                return fail(
                    "report",
                    MgError::parse(format!(
                        "README.md is missing the `{README_BEGIN}` / `{README_END}` markers"
                    )),
                );
            };
            if let Err(e) = std::fs::write(&readme_path, spliced) {
                let msg = format!("cannot write {}: {e}", readme_path.display());
                return fail("report", MgError::io(msg).with_source(e));
            }
            eprintln!("wrote {} (quickstart block)", readme_path.display());
            0
        }
        "check" => {
            let mut drift = false;
            match std::fs::read_to_string(&experiments_path) {
                Ok(committed) if committed == experiments_md => {
                    eprintln!("EXPERIMENTS.md is up to date");
                }
                Ok(committed) => {
                    drift = true;
                    report_drift("EXPERIMENTS.md", &committed, &experiments_md);
                }
                Err(e) => {
                    drift = true;
                    eprintln!("mg report --check: cannot read EXPERIMENTS.md: {e}");
                }
            }
            match std::fs::read_to_string(&readme_path) {
                Ok(readme) => match splice_readme(&readme, &readme_block) {
                    Some(spliced) if spliced == readme => {
                        eprintln!("README.md quickstart block is up to date");
                    }
                    Some(spliced) => {
                        drift = true;
                        report_drift("README.md", &readme, &spliced);
                    }
                    None => {
                        drift = true;
                        eprintln!("mg report --check: README.md markers missing");
                    }
                },
                Err(e) => {
                    drift = true;
                    eprintln!("mg report --check: cannot read README.md: {e}");
                }
            }
            if drift {
                eprintln!(
                    "docs drift detected — run \
                     `cargo run --release -p mg-bench --bin mg -- report --write` and commit"
                );
                1
            } else {
                0
            }
        }
        _ => unreachable!("mode is one of print/write/check"),
    }
}

/// Prints the first differing line of a drifted document.
fn report_drift(name: &str, committed: &str, regenerated: &str) {
    for (i, (c, r)) in committed.lines().zip(regenerated.lines()).enumerate() {
        if c != r {
            eprintln!("{name} drifts at line {}:", i + 1);
            eprintln!("  committed:   {c}");
            eprintln!("  regenerated: {r}");
            return;
        }
    }
    eprintln!(
        "{name} drifts in length: committed {} lines, regenerated {} lines",
        committed.lines().count(),
        regenerated.lines().count()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("sample");
        r.line("== Sample ==");
        r.blank_then("-- suite --");
        let mut t = TableBlock::new("sample.t", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        r.table(t);
        r.line("gmean: 1.0");
        r
    }

    #[test]
    fn text_rendering_matches_legacy_shapes() {
        let s = render_text(&sample());
        assert!(s.starts_with("== Sample ==\n\n-- suite --\n"));
        assert!(s.ends_with("gmean: 1.0\n"));
        // Hidden tables are skipped by text only.
        let mut r = Report::new("h");
        r.table(TableBlock::new("h.t", &["x"]).hidden());
        assert_eq!(render_text(&r), "");
        assert!(render_json(&r).contains("\"h.t\""));
    }

    #[test]
    fn json_is_escaped() {
        let s = render_json(&sample());
        assert!(s.contains("\"schema\": \"mg-report-v1\""));
        assert!(s.contains("\"x,y\""));
        assert_eq!(json_str("a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn csv_quotes_fields() {
        let s = render_csv(&sample());
        assert!(s.contains("# table: sample.t"));
        assert!(s.contains("1,\"x,y\""));
    }

    #[test]
    fn markdown_promotes_headings() {
        let s = render_markdown(&sample());
        assert!(s.contains("### Sample"));
        assert!(s.contains("#### suite"));
        assert!(s.contains("| a | b |"));
    }

    #[test]
    fn registry_names_and_aliases_resolve() {
        assert_eq!(experiments().len(), 11);
        for e in experiments() {
            assert!(experiment(e.name).is_some());
            if !e.legacy_bin.is_empty() {
                assert!(experiment(e.legacy_bin).is_some());
            }
        }
        assert!(experiment("nonesuch").is_none());
        // An empty name must not accidentally match an alias-less entry.
        assert!(experiment("").is_none());
    }

    #[test]
    fn readme_splice_replaces_only_the_block() {
        let readme = format!("head\n{README_BEGIN}\nold\n{README_END}\ntail\n");
        let spliced = splice_readme(&readme, &compose_readme_block()).unwrap();
        assert!(spliced.starts_with("head\n"));
        assert!(spliced.ends_with("\ntail\n"));
        assert!(spliced.contains("mg run fig6"));
        assert!(!spliced.contains("\nold\n"));
        assert!(splice_readme("no markers", "x").is_none());
    }
}
