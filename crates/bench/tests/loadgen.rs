//! End-to-end contract of `mg loadgen` (the serve.rs differential,
//! extended to the cluster):
//!
//! 1. the seeded schedule is an exact replay — same seed, same request
//!    multiset, bit for bit;
//! 2. against a **single shard** the cluster degenerates into one
//!    daemon, and every payload the load generator receives is
//!    byte-identical to the sequential `mg run` output for the same
//!    arguments (`run_loadgen` fails on the first differing byte, so a
//!    clean `Ok` *is* the differential) with cluster-wide exactly-once
//!    preparation and no reroutes, deaths, or steals to account for;
//! 3. with a shard hard-killed mid-soak (`kill_shard`), every accepted
//!    request still completes byte-identically — zero dropped requests.
//!
//! Everything runs in-process over loopback TCP on the tiny input in
//! quick mode, mirroring `crates/bench/tests/serve.rs`.

use mg_bench::loadgen_cli::{run_loadgen, schedule, LoadgenOpts};

#[test]
fn schedule_replays_exactly_per_seed() {
    let a = schedule(7, 100, 4);
    let b = schedule(7, 100, 4);
    assert_eq!(a, b, "a seed is an exact replay");
    assert_eq!(a.len(), 100);
    assert!(a.iter().all(|row| row.len() == 4));
    assert_ne!(a, schedule(8, 100, 4), "seeds draw different mixes");
    // Clients draw independent slots: not every row is the same row
    // (hot duplicates coalesce *across* clients, not by accident of a
    // degenerate schedule).
    assert!(a.iter().any(|row| row != &a[0]), "rows differ across clients");
}

#[test]
fn single_shard_loadgen_matches_sequential_mg_run_byte_for_byte() {
    let opts = LoadgenOpts {
        seed: 7,
        clients: 4,
        requests: 3,
        shards: 1,
        quick: true,
        kill_shard: false,
        out: None,
    };
    let report = run_loadgen(&opts).expect("every payload byte-identical to `mg run`");
    assert_eq!(report.soak.requests, 4 * 3, "every scheduled request completed");
    assert!(report.soak.lat.p50_ms > 0.0);
    assert!(report.soak.lat.p50_ms <= report.soak.lat.p99_ms);
    assert_eq!(report.prep_delta, 0, "the warm verification wave re-prepared nothing");
    assert!(report.stat("routed") >= 4 * 3, "soak + verify runs all routed");
    assert_eq!(report.stat("reroutes"), 0, "one shard, nowhere to fail over");
    assert_eq!(report.stat("shard_deaths"), 0);
    assert_eq!(report.stat("steals"), 0, "one shard, no peers to steal from");
}

#[test]
fn killed_shard_drops_no_accepted_request() {
    let opts = LoadgenOpts {
        seed: 7,
        clients: 4,
        requests: 3,
        shards: 3,
        quick: true,
        kill_shard: true,
        out: None,
    };
    // `run_loadgen` fails a client on the first dropped request, hung
    // stream, or payload mismatch — surviving the armed shard kill with
    // `Ok` is the resilience contract.
    let report = run_loadgen(&opts).expect("all requests completed despite the shard kill");
    assert_eq!(report.soak.requests, 4 * 3);
    assert_eq!(report.stat("shard_deaths"), 1, "the burst kills exactly one shard");
    assert!(report.stat("reroutes") > 0, "the dead shard's keys failed over");
}
