//! End-to-end contract of `mg serve` over the real experiment registry:
//!
//! 1. a served `run` request returns a payload **byte-identical** to the
//!    stdout of the same `mg run --format json` invocation;
//! 2. two concurrent clients requesting the same experiment trigger
//!    exactly one preparation per workload (batching + the shared warm
//!    prep pool, asserted through the serve counters);
//! 3. a later identical request reuses the warm pool (cold/warm
//!    bit-identity extends to served results);
//! 4. the protocol version is pinned to the cache schema version.
//!
//! Everything runs in-process over a loopback TCP socket; the experiment
//! is `fig7` on the tiny input in quick mode (the cheapest real
//! registry entry: six focus workloads), with the on-disk cache off so
//! the test is hermetic — sharing comes from the pool alone.

use mg_bench::cli::{self, Format, RunArgs};
use mg_bench::serve_cli;
use mg_serve::{Client, Request, Response, RunRequest};

fn fig7_request() -> RunRequest {
    RunRequest {
        quick: Some(true),
        input: "tiny".into(),
        no_cache: true,
        format: "json".into(),
        ..RunRequest::new("fig7")
    }
}

/// The stdout `mg run fig7 --quick --input tiny --no-cache --format
/// json` prints, computed in-process through the same code path
/// (`cmd_run` is `build` + `render` + `print!`).
fn direct_mg_run_stdout() -> String {
    let args = RunArgs {
        quick: Some(true),
        input: cli::parse_input("tiny").unwrap(),
        no_cache: true,
        ..RunArgs::default()
    };
    let spec = cli::experiment("fig7").unwrap();
    cli::render(&(spec.build)(&args), Format::Json)
}

fn stat(pairs: &[(String, u64)], name: &str) -> u64 {
    pairs.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or_else(|| {
        panic!("counter {name:?} missing from {pairs:?}");
    })
}

#[test]
fn served_results_are_byte_identical_and_share_one_prep() {
    let server =
        serve_cli::bind_registry_server("127.0.0.1:0", false, 2, 16).expect("bind loopback");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.spawn();
    let client = Client::tcp(&addr);
    let run = Request::Run(fig7_request());

    // --- two concurrent clients, same experiment ---
    let (first, second) = std::thread::scope(|scope| {
        let a = {
            let client = client.clone();
            let run = run.clone();
            scope.spawn(move || {
                let mut cells = 0usize;
                let terminal = client
                    .request(&run, |e| {
                        if matches!(e, Response::Cell { .. }) {
                            cells += 1;
                        }
                    })
                    .expect("request");
                (terminal, cells)
            })
        };
        // Launch the duplicate only once the first request is visibly
        // in flight, so the attach is deterministic rather than a race
        // against the (multi-second) run completing first. The batch
        // stays attachable from enqueue to terminal delivery.
        loop {
            let Response::Stats { pairs } =
                client.request(&Request::Stats, |_| {}).expect("stats")
            else {
                panic!("expected stats");
            };
            if stat(&pairs, "in_flight") >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let b = {
            let client = client.clone();
            let run = run.clone();
            scope.spawn(move || client.request(&run, |_| {}).expect("request"))
        };
        (a.join().unwrap(), b.join().unwrap())
    });

    let (terminal_a, cells_a) = first;
    let Response::Done { status: 0, payload: payload_a } = terminal_a else {
        panic!("expected Done, got {terminal_a:?}");
    };
    let Response::Done { status: 0, payload: payload_b } = second else {
        panic!("expected Done, got {second:?}");
    };
    assert_eq!(payload_a, payload_b, "batched clients receive identical payloads");
    assert!(cells_a > 0, "per-cell progress frames streamed while running");

    // Exactly one preparation per focus workload, despite two clients:
    // the duplicate attached to the in-flight batch (batched == 1) and
    // the pool prepared each workload once.
    let Response::Stats { pairs } = client.request(&Request::Stats, |_| {}).unwrap() else {
        panic!("expected stats");
    };
    assert_eq!(stat(&pairs, "batched"), 1, "second client attached to the first batch");
    assert_eq!(stat(&pairs, "preps_prepared"), 6, "one prep per fig7 focus workload");
    assert_eq!(stat(&pairs, "preps_reused"), 0);
    assert_eq!(stat(&pairs, "served"), 2);

    // --- a later identical request: warm pool, identical bytes ---
    let warm = client.request(&run, |_| {}).expect("request");
    let Response::Done { status: 0, payload: payload_warm } = warm else {
        panic!("expected Done, got {warm:?}");
    };
    assert_eq!(payload_warm, payload_a, "warm-pool rerun is bit-identical");
    let Response::Stats { pairs } = client.request(&Request::Stats, |_| {}).unwrap() else {
        panic!("expected stats");
    };
    assert_eq!(stat(&pairs, "preps_prepared"), 6, "no re-preparation for the warm rerun");
    assert_eq!(stat(&pairs, "preps_reused"), 6, "every workload came from the warm pool");

    // --- byte-identity against the one-shot `mg run` path ---
    assert_eq!(payload_a, direct_mg_run_stdout(), "served JSON == `mg run --format json`");

    // --- invalid requests are rejected before queueing ---
    let bad = client.request(&Request::Run(RunRequest::new("fig99")), |_| {}).expect("request");
    assert!(matches!(&bad, Response::Error { message } if message.contains("fig99")));
    let bad_input = client
        .request(&Request::Run(RunRequest { input: "huge".into(), ..fig7_request() }), |_| {})
        .expect("request");
    assert!(matches!(&bad_input, Response::Error { message } if message.contains("huge")));
    // `perf` is a one-shot tool (it writes files into the daemon's cwd
    // and times the daemon host); the served registry excludes it.
    let perf = client.request(&Request::Run(RunRequest::new("perf")), |_| {}).expect("request");
    assert!(matches!(&perf, Response::Error { message } if message.contains("perf")));

    client.request(&Request::Shutdown { drain: true }, |_| {}).expect("shutdown");
    handle.join().unwrap().unwrap();
}

/// `docs/PROTOCOL.md` versioning rule: a `CACHE_SCHEMA_VERSION` bump
/// changes what a byte-identical request may return, so it must drag
/// `PROTOCOL_VERSION` with it. This pin fails on either bump until the
/// pairing (and the doc's table) is updated.
#[test]
fn protocol_version_is_pinned_to_the_cache_schema_version() {
    assert_eq!(
        (mg_serve::PROTOCOL_VERSION, mg_harness::CACHE_SCHEMA_VERSION),
        (3, 1),
        "bumping either version requires updating docs/PROTOCOL.md and this pairing"
    );
}
