//! Criterion wrappers over scaled-down versions of each paper experiment,
//! so `cargo bench --workspace` exercises the whole harness. The full-size
//! tables are produced by the `fig*` binaries (see `EXPERIMENTS.md`).

use criterion::{criterion_group, criterion_main, Criterion};
use mg_bench::{Engine, Run};
use mg_core::{select_domain, Policy, RewriteStyle};
use mg_uarch::SimConfig;
use mg_workloads::Input;

const QUICK_OPS: u64 = 20_000;

fn quick(mut cfg: SimConfig) -> SimConfig {
    cfg.max_ops = QUICK_OPS;
    cfg
}

/// Two prepared workloads (crc32, rgba.conv) behind a shared engine.
fn engine() -> Engine {
    Engine::builder()
        .workloads(&["crc32", "rgba.conv"])
        .input(Input::tiny())
        .quick(false)
        .build()
}

/// Figure 5: coverage sweep (capacity × size, both policies).
fn bench_fig5(c: &mut Criterion) {
    let e = engine();
    let p = &e.preps()[0];
    c.bench_function("fig5/coverage_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cap in [32usize, 512] {
                for sz in [2usize, 4] {
                    for pol in [Policy::integer(), Policy::integer_memory()] {
                        // Uncached select: measure the greedy pass itself,
                        // not the engine's memoized fast path.
                        let sel = mg_core::select(
                            &p.candidates,
                            &pol.with_capacity(cap).with_max_size(sz),
                        );
                        acc += sel.coverage(p.total_dyn);
                    }
                }
            }
            acc
        })
    });
}

/// Figure 6: baseline vs integer-memory mini-graph timing simulation,
/// through the engine's matrix fan-out (one workload, so the measured
/// cost is exactly the crc32 baseline + mg pair).
fn bench_fig6(c: &mut Criterion) {
    let e = Engine::builder().workloads(&["crc32"]).input(Input::tiny()).quick(false).build();
    let runs = [
        Run::baseline(quick(SimConfig::baseline())),
        Run::mini_graph(
            Policy::integer_memory(),
            RewriteStyle::NopPadded,
            quick(SimConfig::mg_integer_memory()),
        ),
    ];
    c.bench_function("fig6/baseline_vs_mg", |b| {
        b.iter(|| {
            let matrix = e.run(&runs);
            (matrix.rows[0].stats[0].cycles, matrix.rows[0].stats[1].cycles)
        })
    });
}

/// Figure 7: policy-restricted selection.
fn bench_fig7(c: &mut Criterion) {
    let e = engine();
    let p = &e.preps()[0];
    c.bench_function("fig7/policy_ablation", |b| {
        b.iter(|| {
            let restricted = Policy {
                allow_external_serial: false,
                allow_internal_parallel: false,
                allow_interior_loads: false,
                ..Policy::integer_memory()
            };
            let s1 = mg_core::select(&p.candidates, &Policy::integer_memory());
            let s2 = mg_core::select(&p.candidates, &restricted);
            (s1.saved_slots(), s2.saved_slots())
        })
    });
}

/// Figure 8: reduced register file and narrow machine.
fn bench_fig8(c: &mut Criterion) {
    let e = engine();
    let p = &e.preps()[1];
    let policy = Policy::integer_memory();
    c.bench_function("fig8/reduced_resources", |b| {
        b.iter(|| {
            let small = p.run_policy(
                &policy,
                RewriteStyle::NopPadded,
                &quick(SimConfig::mg_integer_memory().with_phys_regs(104)),
            );
            let narrow = p.run_baseline(&quick(SimConfig::baseline().with_front_width(4)));
            (small.cycles, narrow.cycles)
        })
    });
}

/// §6.1 domain-specific selection across two programs.
fn bench_domain(c: &mut Criterion) {
    let e = engine();
    let (a, b2) = (&e.preps()[0], &e.preps()[1]);
    c.bench_function("fig5/domain_selection", |b| {
        b.iter(|| {
            let (sels, catalog) = select_domain(
                &[a.candidates.clone(), b2.candidates.clone()],
                &Policy::integer_memory().with_capacity(128),
            );
            (sels.len(), catalog.len())
        })
    });
}

/// §6.2 compressed-image rewriting.
fn bench_icache(c: &mut Criterion) {
    let e = engine();
    let p = &e.preps()[0];
    let sel = p.select(&Policy::integer_memory());
    c.bench_function("icache/compressed_rewrite", |b| {
        b.iter(|| {
            let rw = mg_core::rewrite(&p.prog, &sel, RewriteStyle::Compressed);
            rw.program.len()
        })
    });
}

criterion_group!(
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5, bench_fig6, bench_fig7, bench_fig8, bench_domain, bench_icache
);
criterion_main!(experiments);
