//! Component micro-benchmarks: the building blocks the experiments lean
//! on (functional simulation, extraction, cache model, timing simulation
//! throughput).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mg_bench::Prep;
use mg_core::Policy;
use mg_isa::HandleCatalog;
use mg_profile::record_trace;
use mg_uarch::{simulate, Cache, SimConfig};
use mg_workloads::{by_name, Input};

fn bench_functional_sim(c: &mut Criterion) {
    let w = by_name("crafty.bits").expect("registered");
    let (prog, mem) = w.build(&Input::tiny());
    let n = {
        let mut m = mem.clone();
        record_trace(&prog, &mut m, None, u64::MAX).unwrap().insts
    };
    let mut g = c.benchmark_group("functional_sim");
    g.throughput(Throughput::Elements(n));
    g.bench_function("crafty.bits", |b| {
        b.iter(|| {
            let mut m = mem.clone();
            record_trace(&prog, &mut m, None, u64::MAX).unwrap().insts
        })
    });
    g.finish();
}

fn bench_extraction(c: &mut Criterion) {
    let w = by_name("adpcm.enc").expect("registered");
    c.bench_function("extraction/enumerate_and_select", |b| {
        b.iter(|| {
            // Fresh Prep each iteration: measures the uncached stage-one
            // cost (profile + enumerate + select).
            let p = Prep::new(&w, &Input::tiny());
            let sel = p.select(&Policy::integer_memory());
            (p.candidates.len(), sel.chosen.len())
        })
    });
}

fn bench_cache_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("l1_strided_access", |b| {
        let mut cache = Cache::new(32 * 1024, 2, 32);
        let mut addr = 0u64;
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..100_000 {
                if cache.access(addr) {
                    hits += 1;
                }
                addr = addr.wrapping_add(24) & 0xf_ffff;
            }
            hits
        })
    });
    g.finish();
}

fn bench_timing_sim(c: &mut Criterion) {
    let w = by_name("rgba.conv").expect("registered");
    let (prog, mem) = w.build(&Input::tiny());
    let trace = {
        let mut m = mem.clone();
        record_trace(&prog, &mut m, None, u64::MAX).unwrap()
    };
    let mut cfg = SimConfig::baseline();
    cfg.max_ops = 50_000;
    let mut g = c.benchmark_group("timing_sim");
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("baseline_50k_ops", |b| {
        b.iter(|| simulate(&cfg, &prog, &trace, &HandleCatalog::new()).cycles)
    });
    g.finish();
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(10);
    targets = bench_functional_sim, bench_extraction, bench_cache_model, bench_timing_sim
);
criterion_main!(components);
