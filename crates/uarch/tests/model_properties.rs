//! Property tests on the simulator's core data structures: the cache
//! model against a naive reference implementation, and the renamer's
//! allocate/release/undo invariants under random operation sequences.

use mg_isa::reg;
use mg_uarch::{Cache, Renamer};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A trivially correct set-associative LRU cache.
struct RefCache {
    sets: Vec<VecDeque<u64>>, // most-recent at the back
    ways: usize,
    line_shift: u32,
}

impl RefCache {
    fn new(bytes: usize, ways: usize, line: usize) -> RefCache {
        RefCache {
            sets: vec![VecDeque::new(); bytes / (ways * line)],
            ways,
            line_shift: line.trailing_zeros(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let tag = addr >> self.line_shift;
        let set = (tag as usize) & (self.sets.len() - 1);
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            s.remove(pos);
            s.push_back(tag);
            true
        } else {
            if s.len() == self.ways {
                s.pop_front();
            }
            s.push_back(tag);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The production cache and the reference model agree on every
    /// hit/miss outcome for arbitrary access streams.
    #[test]
    fn cache_matches_reference_model(
        addrs in prop::collection::vec(0u64..0x4000, 1..400),
        geometry in prop::sample::select(vec![
            (1024usize, 1usize, 32usize),
            (1024, 2, 32),
            (2048, 4, 64),
            (512, 2, 16),
        ]),
    ) {
        let (bytes, ways, line) = geometry;
        let mut real = Cache::new(bytes, ways, line);
        let mut reference = RefCache::new(bytes, ways, line);
        for (i, &a) in addrs.iter().enumerate() {
            let h1 = real.access(a);
            let h2 = reference.access(a);
            prop_assert_eq!(h1, h2, "access #{} (addr {:#x}) diverged", i, a);
        }
        prop_assert_eq!(real.accesses, addrs.len() as u64);
    }

    /// Probe never changes state: interleaving probes leaves the hit/miss
    /// sequence unchanged.
    #[test]
    fn cache_probe_is_pure(addrs in prop::collection::vec(0u64..0x2000, 1..200)) {
        let mut a = Cache::new(1024, 2, 32);
        let mut b = Cache::new(1024, 2, 32);
        for &addr in &addrs {
            let _ = b.probe(addr ^ 0x540);
            let _ = b.probe(addr);
            prop_assert_eq!(a.access(addr), b.access(addr));
        }
    }

    /// Renamer invariants under random rename/commit-release/squash-undo
    /// sequences: no double allocation, mappings restored exactly, and the
    /// free count is conserved.
    #[test]
    fn renamer_conserves_registers(
        ops in prop::collection::vec((0u8..31, prop::bool::ANY), 1..200),
    ) {
        let total = 96usize;
        let mut r = Renamer::new(total);
        // In-flight renames: (arch, renamed) newest at the back.
        let mut inflight: Vec<(u8, mg_uarch::RenamedDest)> = Vec::new();
        let mut live = std::collections::HashSet::new();
        for i in 0..32u16 {
            live.insert(i);
        }

        for (arch, squash) in ops {
            if squash && !inflight.is_empty() {
                // Squash the youngest half, undoing youngest-first.
                let keep = inflight.len() / 2;
                while inflight.len() > keep {
                    let (a, d) = inflight.pop().expect("non-empty");
                    r.undo(reg(a), d);
                    prop_assert!(live.remove(&d.preg), "freed register was not live");
                }
            } else if let Some(d) = r.rename_dest(reg(arch)) {
                prop_assert!(live.insert(d.preg), "double allocation of p{}", d.preg);
                prop_assert_eq!(r.lookup(reg(arch)), d.preg);
                inflight.push((arch, d));
            } else {
                // Out of registers: commit the oldest in-flight rename.
                prop_assert!(!inflight.is_empty(), "exhausted with nothing in flight");
                let (_, d) = inflight.remove(0);
                prop_assert!(live.remove(&d.prev), "released register was not live");
                r.release(d.prev);
            }
            prop_assert_eq!(live.len() + r.free_count(), total, "registers leaked");
        }
    }
}
