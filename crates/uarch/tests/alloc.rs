//! Steady-state zero-allocation test for the pipeline hot loop.
//!
//! Installs a counting global allocator feeding `mg_uarch::allocwatch`,
//! warms a simulator past its one-time capacity growth (trace recording,
//! event-wheel slot buffers, queue rings), then arms the per-cycle
//! tripwire and runs the remainder: any heap allocation inside a
//! simulated cycle panics with a count (debug builds — the check in the
//! cycle loop is `debug_assertions`-gated).

use mg_isa::{reg, Asm, HandleCatalog, Memory, Program};
use mg_profile::{record_trace, Trace};
use mg_uarch::{allocwatch, Predecode, SimConfig, Simulator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::Arc;

/// The system allocator with an `allocwatch` tap on every acquisition
/// path (`dealloc` is untracked: freeing is not new heap traffic).
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        allocwatch::record();
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        allocwatch::record();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        allocwatch::record();
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A kernel mixing the allocation-prone behaviours: loads and stores
/// (LQ/SQ churn, cache misses → far completion events), a data-dependent
/// branch (mispredict squashes), and enough iterations to leave any
/// warm-up growth far behind.
fn image() -> (Program, Trace) {
    let mut a = Asm::new();
    a.li(reg(1), 6_000);
    a.li(reg(4), 0x20_0000);
    a.li(reg(5), 0);
    a.label("top");
    a.ldq(reg(2), 0, reg(4));
    a.addq(reg(2), 1, reg(2));
    a.stq(reg(2), 0, reg(4));
    a.addq(reg(4), 64, reg(4)); // new cache line every iteration
    a.and(reg(2), 7, reg(3));
    a.beq(reg(3), "skip"); // data-dependent: mispredicts
    a.addq(reg(5), 1, reg(5));
    a.label("skip");
    a.subq(reg(1), 1, reg(1));
    a.bne(reg(1), "top");
    a.halt();
    let prog = a.finish().unwrap();
    let trace = record_trace(&prog, &mut Memory::new(), None, 200_000).unwrap();
    (prog, trace)
}

#[test]
fn steady_state_cycles_do_not_allocate() {
    let (prog, trace) = image();
    let catalog = HandleCatalog::new();
    let pd = Arc::new(Predecode::new(&prog, &catalog));
    let mut sim = Simulator::with_predecode(
        SimConfig::baseline(),
        &prog,
        &trace,
        &catalog,
        Arc::clone(&pd),
    );
    // Warm-up: first quarter of the trace covers every one-time growth
    // (wheel overflow heap, harvest buffers, queue capacity).
    let warm = trace.len() / 4;
    assert!(!sim.advance(warm), "kernel must outlast the warm-up window");
    allocwatch::arm();
    let done = sim.advance(usize::MAX);
    allocwatch::disarm();
    assert!(done, "simulation runs to completion");
    let stats = sim.into_stats();
    assert!(stats.mispredicts > 0, "kernel exercises squash paths");
    assert!(stats.cycles > 0);
}
