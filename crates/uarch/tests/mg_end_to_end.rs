//! End-to-end mini-graph pipeline tests: profile → extract → select →
//! rewrite → trace → cycle-level simulation, checking the paper's headline
//! claims qualitatively (bandwidth/capacity amplification, serialization
//! costs, collapsing gains).

use mg_core::{extract, rewrite, Policy, RewriteStyle};
use mg_isa::{reg, Asm, HandleCatalog, Memory, Program};
use mg_profile::record_trace;
use mg_uarch::{simulate, SimConfig, SimStats};

/// Runs baseline image on `cfg_base` and the rewritten image on `cfg_mg`,
/// returning (baseline, mini-graph) stats.
fn compare(
    prog: &Program,
    policy: &Policy,
    cfg_base: &SimConfig,
    cfg_mg: &SimConfig,
) -> (SimStats, SimStats) {
    let ex = extract(prog, &mut Memory::new(), policy, 50_000_000).expect("profiling succeeds");
    let rw = rewrite(prog, &ex.selection, RewriteStyle::NopPadded);

    let base_trace = record_trace(prog, &mut Memory::new(), None, 50_000_000).unwrap();
    let mg_trace =
        record_trace(&rw.program, &mut Memory::new(), Some(&ex.selection.catalog), 50_000_000)
            .unwrap();
    assert_eq!(
        base_trace.insts, mg_trace.insts,
        "both images represent the same original instruction stream"
    );

    let base = simulate(cfg_base, prog, &base_trace, &HandleCatalog::new());
    let mg = simulate(cfg_mg, &rw.program, &mg_trace, &ex.selection.catalog);
    assert_eq!(base.insts, mg.insts, "IPC numerators must be comparable");
    (base, mg)
}

/// A front-end-bandwidth-bound loop with abundant fuseable chains.
fn bandwidth_bound_program() -> Program {
    let mut a = Asm::new();
    a.li(reg(30), 2000);
    a.li(reg(20), 0x20_0000);
    a.label("top");
    // Eight independent 3-op serial chains: plenty of ILP, so the 6-wide
    // front end (not the ALUs) is the bottleneck once handles collapse
    // each chain into one slot.
    for i in 0..8u8 {
        let r = reg(i + 1);
        a.addq(r, 3, r);
        a.sll(r, 1, r);
        a.xor(r, 0x55, r);
    }
    a.subq(reg(30), 1, reg(30));
    a.bne(reg(30), "top");
    a.halt();
    a.finish().unwrap()
}

#[test]
fn integer_mini_graphs_amplify_bandwidth() {
    let p = bandwidth_bound_program();
    let (base, mg) =
        compare(&p, &Policy::integer(), &SimConfig::baseline(), &SimConfig::mg_integer());
    let speedup = base.cycles as f64 / mg.cycles as f64;
    assert!(mg.handles > 0, "handles must be planted");
    assert!(mg.handle_coverage() > 0.4, "coverage {:.2}", mg.handle_coverage());
    assert!(
        speedup > 1.10,
        "bandwidth-bound code should speed up well beyond 10%: base {} vs mg {} (x{speedup:.2})",
        base.cycles,
        mg.cycles
    );
}

#[test]
fn collapsing_alu_pipelines_add_latency_reduction() {
    // A latency-bound serial chain: bandwidth amplification alone cannot
    // help much, but pair-wise collapsing shortens the chain.
    let mut a = Asm::new();
    a.li(reg(30), 2000);
    a.label("top");
    for _ in 0..4 {
        a.addq(reg(1), 3, reg(1));
        a.sll(reg(1), 1, reg(1));
        a.xor(reg(1), 0x55, reg(1));
        a.subq(reg(1), 7, reg(1));
    }
    a.subq(reg(30), 1, reg(30));
    a.bne(reg(30), "top");
    a.halt();
    let p = a.finish().unwrap();

    let (_, plain) =
        compare(&p, &Policy::integer(), &SimConfig::baseline(), &SimConfig::mg_integer());
    let (base, collapsing) = compare(
        &p,
        &Policy::integer(),
        &SimConfig::baseline(),
        &SimConfig::mg_integer().with_collapsing(),
    );
    assert!(
        collapsing.cycles < plain.cycles,
        "collapsing must shorten serial chains: {} vs {}",
        collapsing.cycles,
        plain.cycles
    );
    assert!(
        collapsing.cycles < base.cycles,
        "latency reduction should beat the baseline on chain code"
    );
}

#[test]
fn integer_memory_graphs_extend_coverage() {
    // Loads feeding short ALU chains: integer-only policy can fuse little,
    // integer-memory fuses the load-use idioms. The four chains use the
    // same displacement off different base registers, so the load triples
    // coalesce into one MGT template — the common shape in real code
    // (walking several structures with the same field offset).
    let mut a = Asm::new();
    a.li(reg(30), 2000);
    for i in 0..4u8 {
        a.li(reg(20 + i), 0x20_0000 + (i as i64) * 0x100);
    }
    a.label("top");
    for i in 0..4u8 {
        let r = reg(i + 1);
        let base = reg(20 + i);
        a.ldq(r, 16, base);
        a.srl(r, 14, r);
        a.and(r, 1, r);
        a.stq(r, 64, base);
    }
    a.subq(reg(30), 1, reg(30));
    a.bne(reg(30), "top");
    a.halt();
    let p = a.finish().unwrap();

    let ex_int = extract(&p, &mut Memory::new(), &Policy::integer(), 10_000_000).unwrap();
    let ex_mem =
        extract(&p, &mut Memory::new(), &Policy::integer_memory(), 10_000_000).unwrap();
    assert!(
        ex_mem.selection.saved_slots() > ex_int.selection.saved_slots(),
        "integer-memory policy must cover more: {} vs {}",
        ex_mem.selection.saved_slots(),
        ex_int.selection.saved_slots()
    );

    let (base, mg) = compare(
        &p,
        &Policy::integer_memory(),
        &SimConfig::baseline(),
        &SimConfig::mg_integer_memory(),
    );
    assert!(mg.handles > 0);
    assert!(
        mg.cycles <= base.cycles,
        "integer-memory mini-graphs should not slow down load-use code: {} vs {}",
        mg.cycles,
        base.cycles
    );
}

#[test]
fn mini_graphs_compensate_for_small_register_file() {
    let p = bandwidth_bound_program();
    // Baseline with a 104-register file vs mini-graphs with the same.
    let (base_small, mg_small) = compare(
        &p,
        &Policy::integer(),
        &SimConfig::baseline().with_phys_regs(104),
        &SimConfig::mg_integer().with_phys_regs(104),
    );
    assert!(
        mg_small.cycles < base_small.cycles,
        "handles allocate one register per graph and must help a small PRF"
    );
    // Mini-graphs at 104 registers should roughly match (or beat) the
    // baseline at 164: the paper's §6.3 claim of compensating for a 40%
    // reduction of in-flight registers.
    let base_full = {
        let t = record_trace(&p, &mut Memory::new(), None, 10_000_000).unwrap();
        simulate(&SimConfig::baseline(), &p, &t, &HandleCatalog::new())
    };
    assert!(
        (mg_small.cycles as f64) < (base_full.cycles as f64) * 1.05,
        "mg@104 ({}) should be within 5% of baseline@164 ({})",
        mg_small.cycles,
        base_full.cycles
    );
}

#[test]
fn mini_graphs_tolerate_pipelined_scheduler() {
    // Serial-chain code on a 2-cycle scheduler: mini-graph interiors are
    // pre-scheduled, so handles hide most of the wake-up/select latency.
    let mut a = Asm::new();
    a.li(reg(30), 2000);
    a.label("top");
    for _ in 0..6 {
        a.addq(reg(1), 3, reg(1));
        a.sll(reg(1), 1, reg(1));
        a.xor(reg(1), 0x55, reg(1));
    }
    a.subq(reg(30), 1, reg(30));
    a.bne(reg(30), "top");
    a.halt();
    let p = a.finish().unwrap();

    let mut base_cfg = SimConfig::baseline();
    base_cfg.sched_loop = 2;
    let mut mg_cfg = SimConfig::mg_integer();
    mg_cfg.sched_loop = 2;
    let (base2, mg2) = compare(&p, &Policy::integer(), &base_cfg, &mg_cfg);
    let (base1, _) =
        compare(&p, &Policy::integer(), &SimConfig::baseline(), &SimConfig::mg_integer());

    let base_loss = base2.cycles as f64 / base1.cycles as f64;
    assert!(base_loss > 1.3, "2-cycle scheduler should hurt the baseline chain code");
    assert!(
        mg2.cycles < base2.cycles,
        "pre-scheduled mini-graph interiors hide scheduling loop latency"
    );
}
