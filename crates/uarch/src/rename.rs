//! Register renaming: map table, free list, and squash undo.
//!
//! Renaming is where mini-graphs amplify register-file capacity: a handle
//! allocates at most *one* physical register regardless of how many
//! instructions it represents, because interior values live only in the
//! bypass network (paper §3.1).

use mg_isa::{Reg, NUM_REGS};

/// A physical register name.
pub type PReg = u16;

/// The result of renaming one operation's destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RenamedDest {
    /// Newly allocated physical register.
    pub preg: PReg,
    /// The physical register previously mapped to the architectural
    /// destination — freed when the renamed operation retires.
    pub prev: PReg,
}

/// Rename state: architectural→physical map and free list.
#[derive(Clone, Debug)]
pub struct Renamer {
    map: [PReg; NUM_REGS],
    free: Vec<PReg>,
    total: usize,
}

impl Renamer {
    /// Creates a renamer with `phys_regs` physical registers, the first 32
    /// of which hold the initial architectural state.
    ///
    /// # Panics
    ///
    /// Panics if `phys_regs < 33` (there must be at least one free
    /// register for renaming to make progress).
    pub fn new(phys_regs: usize) -> Renamer {
        assert!(phys_regs > NUM_REGS, "need more physical than architectural registers");
        let mut map = [0; NUM_REGS];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as PReg;
        }
        Renamer {
            map,
            free: (NUM_REGS as PReg..phys_regs as PReg).rev().collect(),
            total: phys_regs,
        }
    }

    /// Number of free physical registers.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Number of physical registers currently holding state.
    pub fn in_use(&self) -> usize {
        self.total - self.free.len()
    }

    /// Current physical mapping of an architectural source.
    pub fn lookup(&self, r: Reg) -> PReg {
        self.map[r.index()]
    }

    /// Renames a destination: allocates a new physical register and
    /// returns it with the overwritten mapping, or `None` if the free list
    /// is empty (rename must stall).
    pub fn rename_dest(&mut self, r: Reg) -> Option<RenamedDest> {
        let preg = self.free.pop()?;
        let prev = self.map[r.index()];
        self.map[r.index()] = preg;
        Some(RenamedDest { preg, prev })
    }

    /// Commit-time free of the overwritten physical register.
    pub fn release(&mut self, preg: PReg) {
        debug_assert!(!self.free.contains(&preg), "double free of p{preg}");
        self.free.push(preg);
    }

    /// Squash undo for one renamed destination, applied youngest-first:
    /// restores the previous mapping and returns the allocated register to
    /// the free list.
    pub fn undo(&mut self, r: Reg, renamed: RenamedDest) {
        debug_assert_eq!(self.map[r.index()], renamed.preg, "undo must be youngest-first");
        self.map[r.index()] = renamed.prev;
        self.free.push(renamed.preg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::reg;

    #[test]
    fn initial_state_identity_mapped() {
        let r = Renamer::new(64);
        assert_eq!(r.lookup(reg(5)), 5);
        assert_eq!(r.free_count(), 32);
        assert_eq!(r.in_use(), 32);
    }

    #[test]
    fn rename_allocates_and_remaps() {
        let mut r = Renamer::new(40);
        let d = r.rename_dest(reg(3)).unwrap();
        assert_eq!(d.prev, 3);
        assert_eq!(r.lookup(reg(3)), d.preg);
        assert_eq!(r.in_use(), 33);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut r = Renamer::new(34);
        assert!(r.rename_dest(reg(0)).is_some());
        assert!(r.rename_dest(reg(1)).is_some());
        assert!(r.rename_dest(reg(2)).is_none(), "free list exhausted");
    }

    #[test]
    fn release_enables_reuse() {
        let mut r = Renamer::new(34);
        let d1 = r.rename_dest(reg(0)).unwrap();
        let _d2 = r.rename_dest(reg(0)).unwrap();
        // d1.preg is now the "previous" mapping of the second rename; when
        // the second rename commits, d1's register... actually commit frees
        // the *overwritten* register: the second rename's prev == d1.preg.
        r.release(d1.preg);
        assert!(r.rename_dest(reg(1)).is_some());
    }

    #[test]
    fn undo_restores_mapping_youngest_first() {
        let mut r = Renamer::new(64);
        let before = r.lookup(reg(7));
        let d1 = r.rename_dest(reg(7)).unwrap();
        let d2 = r.rename_dest(reg(7)).unwrap();
        let free_before = r.free_count();
        r.undo(reg(7), d2);
        r.undo(reg(7), d1);
        assert_eq!(r.lookup(reg(7)), before);
        assert_eq!(r.free_count(), free_before + 2);
    }

    #[test]
    fn no_double_allocation() {
        let mut r = Renamer::new(128);
        let mut seen = std::collections::HashSet::new();
        for i in 0..96 {
            let d = r.rename_dest(reg((i % 31) as u8)).unwrap();
            assert!(seen.insert(d.preg), "physical register allocated twice");
        }
    }
}
