//! Hot-path allocation tripwire.
//!
//! The data-oriented pipeline core allocates everything up front: rings,
//! lanes, bitsets, the event wheel's slot buffers. To keep it that way,
//! the simulator's cycle loop checks — in debug builds, when **armed** —
//! that a simulated cycle performed zero heap allocations, and panics
//! with a count if one slipped in.
//!
//! The crate cannot see allocations by itself: a test harness installs a
//! counting `#[global_allocator]` that calls [`record`] on every
//! allocation (see `tests/alloc.rs`), warms the simulator up past its
//! one-time growth (trace buffers, wheel slots), then [`arm`]s the
//! tripwire for the steady-state run. Unarmed — the default — the checks
//! are two relaxed atomic loads per cycle in debug builds and compiled
//! out entirely in release builds.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static COUNT: AtomicU64 = AtomicU64::new(0);

/// Counts one heap allocation. Call this from a counting global
/// allocator's `alloc`/`realloc` paths; it never allocates.
#[inline]
pub fn record() {
    COUNT.fetch_add(1, Ordering::Relaxed);
}

/// Allocations recorded so far (monotonic; only meaningful relative to a
/// previous reading).
#[inline]
pub fn count() -> u64 {
    COUNT.load(Ordering::Relaxed)
}

/// Arms the per-cycle zero-allocation assertion in the simulator's cycle
/// loop (debug builds only). Arm only after warm-up: one-time capacity
/// growth is legitimate.
pub fn arm() {
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms the per-cycle assertion.
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// Whether the tripwire is armed.
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Panics if armed and allocations were recorded since `before` (a prior
/// [`count`] reading).
#[inline]
pub fn check(before: u64) {
    if armed() {
        let after = count();
        assert!(
            after == before,
            "hot-path heap traffic: {} allocation(s) within one simulated cycle",
            after - before
        );
    }
}
