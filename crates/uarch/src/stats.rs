//! Simulation statistics.

use std::fmt;

/// Counters gathered over one timing-simulation run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Committed *original program* instructions (handles count as their
    /// template length — the paper's IPC numerator, so baselines and
    /// mini-graph images are comparable).
    pub insts: u64,
    /// Committed fetched operations (handles count once).
    pub ops: u64,
    /// Committed handles.
    pub handles: u64,
    /// Original instructions represented by committed handles.
    pub handle_insts: u64,
    /// Conditional/indirect control transfers predicted.
    pub branches: u64,
    /// Mispredicted control transfers.
    pub mispredicts: u64,
    /// Instruction-cache accesses and misses.
    pub il1_accesses: u64,
    /// Instruction-cache misses.
    pub il1_misses: u64,
    /// Data-cache accesses.
    pub dl1_accesses: u64,
    /// Data-cache misses.
    pub dl1_misses: u64,
    /// Unified L2 accesses.
    pub l2_accesses: u64,
    /// Unified L2 misses.
    pub l2_misses: u64,
    /// Whole-mini-graph replays due to interior-load cache misses (§4.3).
    pub mg_replays: u64,
    /// Memory-ordering violation squashes.
    pub violations: u64,
    /// Cycles rename stalled for lack of a physical register.
    pub stall_pregs: u64,
    /// Cycles rename stalled for a full ROB.
    pub stall_rob: u64,
    /// Cycles rename stalled for a full issue queue.
    pub stall_iq: u64,
    /// Cycles rename stalled for a full load/store queue.
    pub stall_lsq: u64,
    /// Sum of per-cycle occupied physical registers (for averages).
    pub preg_occupancy_sum: u64,
    /// Sum of per-cycle issue-queue occupancy.
    pub iq_occupancy_sum: u64,
    /// Sum of per-cycle ROB occupancy.
    pub rob_occupancy_sum: u64,
}

impl SimStats {
    /// Instructions per cycle over original program instructions.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.insts as f64 / self.cycles as f64
    }

    /// Fetched-operation throughput (handles count once).
    pub fn opc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.ops as f64 / self.cycles as f64
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            return 0.0;
        }
        self.mispredicts as f64 / self.branches as f64
    }

    /// Data-cache miss rate.
    pub fn dl1_miss_rate(&self) -> f64 {
        if self.dl1_accesses == 0 {
            return 0.0;
        }
        self.dl1_misses as f64 / self.dl1_accesses as f64
    }

    /// Mean physical registers in use per cycle.
    pub fn avg_pregs(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.preg_occupancy_sum as f64 / self.cycles as f64
    }

    /// Mean issue-queue entries in use per cycle.
    pub fn avg_iq(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.iq_occupancy_sum as f64 / self.cycles as f64
    }

    /// Fraction of committed original instructions that travelled inside
    /// handles (realized coverage).
    pub fn handle_coverage(&self) -> f64 {
        if self.insts == 0 {
            return 0.0;
        }
        self.handle_insts as f64 / self.insts as f64
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles            {:>12}", self.cycles)?;
        writeln!(f, "insts             {:>12}", self.insts)?;
        writeln!(f, "IPC               {:>12.3}", self.ipc())?;
        writeln!(f, "ops (fetched)     {:>12}", self.ops)?;
        writeln!(f, "handles           {:>12}", self.handles)?;
        writeln!(f, "handle coverage   {:>12.3}", self.handle_coverage())?;
        writeln!(f, "branch mispredict {:>12.4}", self.mispredict_rate())?;
        writeln!(f, "IL1 miss/access   {:>7}/{:>7}", self.il1_misses, self.il1_accesses)?;
        writeln!(f, "DL1 miss/access   {:>7}/{:>7}", self.dl1_misses, self.dl1_accesses)?;
        writeln!(f, "L2  miss/access   {:>7}/{:>7}", self.l2_misses, self.l2_accesses)?;
        writeln!(f, "mg replays        {:>12}", self.mg_replays)?;
        writeln!(f, "violations        {:>12}", self.violations)?;
        writeln!(f, "avg pregs         {:>12.1}", self.avg_pregs())?;
        writeln!(f, "avg IQ            {:>12.1}", self.avg_iq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_guard_division_by_zero() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.dl1_miss_rate(), 0.0);
    }

    #[test]
    fn ipc_counts_represented_insts() {
        let s = SimStats { cycles: 100, insts: 250, ops: 150, ..SimStats::default() };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.opc() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn display_is_complete() {
        let s = SimStats { cycles: 10, insts: 20, ..SimStats::default() };
        let text = s.to_string();
        assert!(text.contains("IPC"));
        assert!(text.contains("violations"));
    }
}
