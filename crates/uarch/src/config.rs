//! Simulator configuration.

use mg_core::MgtConfig;

/// Mini-graph hardware fitted to the core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MgSupport {
    /// No mini-graph hardware; handles are illegal.
    None,
    /// Two of the integer ALUs are replaced by ALU pipelines: integer
    /// mini-graphs execute, integer-memory handles must not appear.
    Integer,
    /// ALU pipelines plus a sliding-window scheduler: integer-memory
    /// mini-graphs execute too (at most one integer-memory handle issues
    /// per cycle).
    IntegerMemory,
}

/// Full machine description.
///
/// [`SimConfig::baseline`] reproduces the paper's evaluation machine (§6):
/// 6-wide, 15-stage, 128-entry ROB, 64-entry LSQ, 50-entry issue queue,
/// 164 physical registers, 4 int + 2 FP + 2 load + 1 store issue mix,
/// store-sets load scheduling, hybrid 12Kb predictor, 32KB L1s, 2MB L2,
/// 100-cycle memory behind a quarter-frequency 16B bus.
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Front-end width: fetch, decode, rename, and retire per cycle.
    pub front_width: u32,
    /// Issue (execute) width per cycle.
    pub issue_width: u32,
    /// Cycles from fetch to dispatch (front-end depth; the paper's 15-stage
    /// pipe has 9 pre-dispatch stages: 3 fetch, 3 decode, 2 rename,
    /// 1 dispatch).
    pub frontend_depth: u32,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Issue-queue (scheduler) entries.
    pub iq_size: usize,
    /// Load-queue entries.
    pub lq_size: usize,
    /// Store-queue entries.
    pub sq_size: usize,
    /// Physical registers (architected + in-flight; the baseline's 164 =
    /// 64 architected + 100 in-flight).
    pub phys_regs: usize,
    /// Integer ALUs (of which `alu_pipes` are ALU pipelines under
    /// mini-graph support).
    pub int_alus: u32,
    /// ALU pipelines fitted when `mg` is not [`MgSupport::None`].
    pub alu_pipes: u32,
    /// Depth of each ALU pipeline.
    pub alu_pipe_depth: u32,
    /// Load ports.
    pub load_ports: u32,
    /// Store ports.
    pub store_ports: u32,
    /// Physical-register-file write ports (reserved at issue).
    pub prf_write_ports: u32,
    /// Scheduler loop latency: 1 = single-cycle (dependent single-cycle ops
    /// issue back-to-back), 2 = pipelined wake-up/select.
    pub sched_loop: u32,
    /// Mini-graph support level.
    pub mg: MgSupport,
    /// Pair-wise collapsing ALU pipelines (§6.2 latency reduction).
    pub collapsing: bool,
    /// L1 instruction cache: (bytes, associativity, line bytes, hit cycles).
    pub il1: (usize, usize, usize, u32),
    /// L1 data cache: (bytes, associativity, line bytes, hit cycles).
    pub dl1: (usize, usize, usize, u32),
    /// Unified L2: (bytes, associativity, line bytes, hit cycles).
    pub l2: (usize, usize, usize, u32),
    /// Main-memory access latency in cycles.
    pub mem_latency: u32,
    /// Memory-bus occupancy per L2 miss in cycles (16B bus at ¼ core
    /// frequency moving a 128B line = 8 × 4 cycles).
    pub mem_bus_occupancy: u32,
    /// Maximum instructions of the dynamic trace to simulate (0 = all).
    pub max_ops: u64,
}

impl SimConfig {
    /// The paper's baseline machine.
    pub fn baseline() -> SimConfig {
        SimConfig {
            front_width: 6,
            issue_width: 6,
            frontend_depth: 9,
            rob_size: 128,
            iq_size: 50,
            lq_size: 32,
            sq_size: 32,
            phys_regs: 164,
            int_alus: 4,
            alu_pipes: 2,
            alu_pipe_depth: 4,
            load_ports: 2,
            store_ports: 1,
            prf_write_ports: 4,
            sched_loop: 1,
            mg: MgSupport::None,
            collapsing: false,
            il1: (32 * 1024, 2, 32, 1),
            dl1: (32 * 1024, 2, 32, 2),
            l2: (2 * 1024 * 1024, 4, 128, 10),
            mem_latency: 100,
            mem_bus_occupancy: 32,
            max_ops: 0,
        }
    }

    /// Baseline plus ALU pipelines for integer mini-graphs (§6.2 "int").
    pub fn mg_integer() -> SimConfig {
        SimConfig { mg: MgSupport::Integer, ..SimConfig::baseline() }
    }

    /// Baseline plus ALU pipelines and a sliding-window scheduler for
    /// integer-memory mini-graphs (§6.2 "int-mem").
    pub fn mg_integer_memory() -> SimConfig {
        SimConfig { mg: MgSupport::IntegerMemory, ..SimConfig::baseline() }
    }

    /// Returns this configuration with pair-wise collapsing ALU pipelines.
    pub fn with_collapsing(mut self) -> SimConfig {
        self.collapsing = true;
        self
    }

    /// Returns this configuration narrowed to `w`-wide fetch / rename /
    /// retire (Figure 8 bottom).
    pub fn with_front_width(mut self, w: u32) -> SimConfig {
        self.front_width = w;
        self
    }

    /// Returns this configuration with a different physical register count
    /// (Figure 8 top).
    pub fn with_phys_regs(mut self, n: usize) -> SimConfig {
        self.phys_regs = n;
        self
    }

    /// Effective load-use execution latency on an L1 hit (address
    /// generation + cache access).
    pub fn load_hit_latency(&self) -> u32 {
        1 + self.dl1.3
    }

    /// The MGT packing parameters implied by this machine.
    pub fn mgt_config(&self) -> MgtConfig {
        MgtConfig {
            load_latency: self.load_hit_latency(),
            have_alu_pipe: self.mg != MgSupport::None && self.alu_pipes > 0,
            alu_pipe_depth: self.alu_pipe_depth,
            collapsing: self.collapsing,
        }
    }

    /// Number of plain (non-pipeline) ALUs under this configuration.
    pub fn plain_alus(&self) -> u32 {
        if self.mg == MgSupport::None {
            self.int_alus
        } else {
            self.int_alus.saturating_sub(self.alu_pipes)
        }
    }

    /// Number of ALU pipelines under this configuration.
    pub fn pipes(&self) -> u32 {
        if self.mg == MgSupport::None {
            0
        } else {
            self.alu_pipes
        }
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let c = SimConfig::baseline();
        assert_eq!(c.front_width, 6);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.iq_size, 50);
        assert_eq!(c.lq_size + c.sq_size, 64);
        assert_eq!(c.phys_regs, 164);
        assert_eq!(c.int_alus, 4);
        assert_eq!(c.load_ports, 2);
        assert_eq!(c.store_ports, 1);
        assert_eq!(c.prf_write_ports, 4);
        assert_eq!(c.mem_latency, 100);
        assert_eq!(c.plain_alus(), 4, "no APs without mini-graph support");
        assert_eq!(c.pipes(), 0);
    }

    #[test]
    fn mg_config_replaces_two_alus() {
        let c = SimConfig::mg_integer();
        assert_eq!(c.plain_alus(), 2);
        assert_eq!(c.pipes(), 2);
        assert!(c.mgt_config().have_alu_pipe);
    }

    #[test]
    fn load_hit_latency_combines_agen_and_cache() {
        assert_eq!(SimConfig::baseline().load_hit_latency(), 3);
    }

    #[test]
    fn builders() {
        let c = SimConfig::mg_integer_memory()
            .with_collapsing()
            .with_front_width(4)
            .with_phys_regs(104);
        assert!(c.collapsing);
        assert_eq!(c.front_width, 4);
        assert_eq!(c.phys_regs, 104);
        assert!(c.mgt_config().collapsing);
    }
}
