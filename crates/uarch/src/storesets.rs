//! Store-sets memory-dependence prediction (Chrysos & Emer, ISCA-25),
//! the load-scheduling policy of the paper's baseline ("Loads are scheduled
//! using a store sets predictor").
//!
//! The predictor pairs a Store Set ID Table (SSIT), indexed by instruction
//! PC, with a Last Fetched Store Table (LFST), indexed by store-set ID. A
//! load joins the store set of the stores that violated it; at dispatch it
//! must wait for the most recently fetched store of its set. Loads and
//! stores embedded in mini-graphs participate via their *handle* PCs
//! (paper §4.3: "a handle and its PC assume responsibility for memory
//! disambiguation and load scheduling").

/// A store-set identifier.
pub type Ssid = u16;

/// The store-sets predictor state.
#[derive(Clone, Debug)]
pub struct StoreSets {
    ssit: Vec<Option<Ssid>>,
    /// ROB sequence number of the last fetched store per store set.
    lfst: Vec<Option<u64>>,
    next_ssid: Ssid,
    mask: u64,
}

impl StoreSets {
    /// Creates a predictor with an `entries`-sized SSIT (power of two) and
    /// `sets` store sets.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, sets: usize) -> StoreSets {
        assert!(entries.is_power_of_two(), "SSIT size must be a power of two");
        StoreSets {
            ssit: vec![None; entries],
            lfst: vec![None; sets],
            next_ssid: 0,
            mask: entries as u64 - 1,
        }
    }

    /// A reasonable default (4K-entry SSIT, 256 sets).
    pub fn default_size() -> StoreSets {
        StoreSets::new(4096, 256)
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Called when a *store* at `pc` with ROB sequence `seq` is dispatched:
    /// records it as the last fetched store of its set (if it has one) and
    /// returns the previous store of the set, which in full store-sets
    /// hardware the new store would also order behind (we track loads
    /// only; store-store ordering is enforced by in-order SQ commit).
    pub fn dispatch_store(&mut self, pc: u64, seq: u64) -> Option<u64> {
        let ssid = self.ssit[self.index(pc)]?;
        let prev = self.lfst[ssid as usize];
        self.lfst[ssid as usize] = Some(seq);
        prev
    }

    /// Called when a *load* at `pc` is dispatched: returns the ROB
    /// sequence of the store it must wait for, if any.
    pub fn dispatch_load(&mut self, pc: u64) -> Option<u64> {
        let ssid = self.ssit[self.index(pc)]?;
        self.lfst[ssid as usize]
    }

    /// Called when a store with sequence `seq` leaves the window (commits
    /// or is squashed): clears stale LFST entries.
    pub fn retire_store(&mut self, pc: u64, seq: u64) {
        if let Some(ssid) = self.ssit[self.index(pc)] {
            if self.lfst[ssid as usize] == Some(seq) {
                self.lfst[ssid as usize] = None;
            }
        }
    }

    /// Trains the predictor after a memory-ordering violation between the
    /// load at `load_pc` and the store at `store_pc`: both are placed in
    /// the same store set.
    pub fn violation(&mut self, load_pc: u64, store_pc: u64) {
        let li = self.index(load_pc);
        let si = self.index(store_pc);
        match (self.ssit[li], self.ssit[si]) {
            (Some(l), _) => self.ssit[si] = Some(l),
            (None, Some(s)) => self.ssit[li] = Some(s),
            (None, None) => {
                let id = self.next_ssid;
                self.next_ssid = (self.next_ssid + 1) % self.lfst.len() as Ssid;
                self.ssit[li] = Some(id);
                self.ssit[si] = Some(id);
            }
        }
    }

    /// Whether the load at `pc` belongs to any store set.
    pub fn has_set(&self, pc: u64) -> bool {
        self.ssit[self.index(pc)].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_loads_are_unconstrained() {
        let mut ss = StoreSets::default_size();
        assert_eq!(ss.dispatch_load(0x100), None);
        assert_eq!(ss.dispatch_store(0x200, 1), None);
    }

    #[test]
    fn violation_creates_dependence() {
        let mut ss = StoreSets::default_size();
        ss.violation(0x100, 0x200);
        assert!(ss.has_set(0x100));
        assert!(ss.has_set(0x200));
        ss.dispatch_store(0x200, 42);
        assert_eq!(ss.dispatch_load(0x100), Some(42), "load waits for the store");
    }

    #[test]
    fn retire_clears_lfst() {
        let mut ss = StoreSets::default_size();
        ss.violation(0x100, 0x200);
        ss.dispatch_store(0x200, 42);
        ss.retire_store(0x200, 42);
        assert_eq!(ss.dispatch_load(0x100), None, "no in-flight store to wait for");
    }

    #[test]
    fn repeat_violation_merges_sets() {
        let mut ss = StoreSets::default_size();
        ss.violation(0x100, 0x200);
        ss.violation(0x100, 0x300); // second store joins the load's set
        ss.dispatch_store(0x300, 7);
        assert_eq!(ss.dispatch_load(0x100), Some(7));
    }

    #[test]
    fn stale_lfst_not_cleared_by_other_store() {
        let mut ss = StoreSets::default_size();
        ss.violation(0x100, 0x200);
        ss.dispatch_store(0x200, 10);
        ss.dispatch_store(0x200, 11); // newer store of the same set
        ss.retire_store(0x200, 10); // retiring the old one must not clear 11
        assert_eq!(ss.dispatch_load(0x100), Some(11));
    }
}
