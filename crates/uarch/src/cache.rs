//! Set-associative caches and the two-level memory hierarchy.

/// A set-associative cache with true-LRU replacement.
///
/// The cache tracks tag state only (the simulator is trace-driven; data
/// values come from functional execution). `access` returns whether the
/// line hit and fills it on a miss.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    tags: Vec<u64>,
    valid: Vec<bool>,
    lru: Vec<u64>,
    tick: u64,
    /// Total accesses.
    pub accesses: u64,
    /// Total misses.
    pub misses: u64,
}

impl Cache {
    /// Creates a cache of `bytes` capacity, `ways` associativity, and
    /// `line` bytes per line.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two set count
    /// or line size).
    pub fn new(bytes: usize, ways: usize, line: usize) -> Cache {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        let sets = bytes / (ways * line);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets,
            ways,
            line_shift: line.trailing_zeros(),
            tags: vec![0; sets * ways],
            valid: vec![false; sets * ways],
            lru: vec![0; sets * ways],
            tick: 0,
            accesses: 0,
            misses: 0,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Accesses the line containing `addr`; returns `true` on a hit. Fills
    /// the line (evicting LRU) on a miss.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.tick += 1;
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        for w in 0..self.ways {
            let i = base + w;
            if self.valid[i] && self.tags[i] == tag {
                self.lru[i] = self.tick;
                return true;
            }
        }
        self.misses += 1;
        let victim = (0..self.ways)
            .min_by_key(|&w| {
                let i = base + w;
                if self.valid[i] {
                    self.lru[i]
                } else {
                    0
                }
            })
            .expect("cache has at least one way");
        let i = base + victim;
        self.tags[i] = tag;
        self.valid[i] = true;
        self.lru[i] = self.tick;
        false
    }

    /// Whether the line containing `addr` is resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        (0..self.ways).any(|w| self.valid[base + w] && self.tags[base + w] == tag)
    }
}

/// Result of a memory-hierarchy access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles (including L1 hit time).
    pub latency: u32,
    /// Whether the access missed in L1.
    pub l1_miss: bool,
    /// Whether the access missed in L2 (went to memory).
    pub l2_miss: bool,
}

/// The two-level hierarchy behind one L1 cache (instruction or data): L1 →
/// unified L2 → memory over a shared occupancy-limited bus.
#[derive(Clone, Debug)]
pub struct MemHierarchy {
    /// L1 instruction cache.
    pub il1: Cache,
    /// L1 data cache.
    pub dl1: Cache,
    /// Unified L2.
    pub l2: Cache,
    il1_lat: u32,
    dl1_lat: u32,
    l2_lat: u32,
    mem_lat: u32,
    bus_occupancy: u32,
    bus_free_at: u64,
}

impl MemHierarchy {
    /// Builds the hierarchy from `(bytes, ways, line, hit_latency)` tuples.
    pub fn new(
        il1: (usize, usize, usize, u32),
        dl1: (usize, usize, usize, u32),
        l2: (usize, usize, usize, u32),
        mem_lat: u32,
        bus_occupancy: u32,
    ) -> MemHierarchy {
        MemHierarchy {
            il1: Cache::new(il1.0, il1.1, il1.2),
            dl1: Cache::new(dl1.0, dl1.1, dl1.2),
            l2: Cache::new(l2.0, l2.1, l2.2),
            il1_lat: il1.3,
            dl1_lat: dl1.3,
            l2_lat: l2.3,
            mem_lat,
            bus_occupancy,
            bus_free_at: 0,
        }
    }

    fn lower_levels(&mut self, addr: u64, now: u64, l1_lat: u32) -> AccessResult {
        if self.l2.access(addr) {
            return AccessResult {
                latency: l1_lat + self.l2_lat,
                l1_miss: true,
                l2_miss: false,
            };
        }
        // L2 miss: line moves over the quarter-frequency 16-byte bus; a
        // busy bus delays the access start.
        let start = now.max(self.bus_free_at);
        self.bus_free_at = start + self.bus_occupancy as u64;
        let queue = (start - now) as u32;
        AccessResult {
            latency: l1_lat + self.l2_lat + queue + self.mem_lat,
            l1_miss: true,
            l2_miss: true,
        }
    }

    /// Instruction-fetch access at `now`.
    pub fn fetch(&mut self, addr: u64, now: u64) -> AccessResult {
        if self.il1.access(addr) {
            return AccessResult { latency: self.il1_lat, l1_miss: false, l2_miss: false };
        }
        self.lower_levels(addr, now, self.il1_lat)
    }

    /// Data access (load or store fill) at `now`.
    pub fn data(&mut self, addr: u64, now: u64) -> AccessResult {
        if self.dl1.access(addr) {
            return AccessResult { latency: self.dl1_lat, l1_miss: false, l2_miss: false };
        }
        self.lower_levels(addr, now, self.dl1_lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 2, 32);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x11f), "same 32-byte line");
        assert!(!c.access(0x120), "next line misses");
        assert_eq!(c.accesses, 4);
        assert_eq!(c.misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 2 ways, 1 set: capacity 2 lines.
        let mut c = Cache::new(64, 2, 32);
        c.access(0x000); // A
        c.access(0x100); // B (0x100 maps to the same single set)
        c.access(0x000); // refresh A
        c.access(0x200); // C evicts B (LRU)
        assert!(c.probe(0x000), "A survives");
        assert!(!c.probe(0x100), "B evicted");
        assert!(c.probe(0x200));
    }

    #[test]
    fn hierarchy_latencies() {
        let mut m =
            MemHierarchy::new((1024, 2, 32, 1), (1024, 2, 32, 2), (8192, 4, 128, 10), 100, 32);
        // Cold: L1 miss + L2 miss -> memory.
        let r = m.data(0x4000, 0);
        assert!(r.l1_miss && r.l2_miss);
        assert_eq!(r.latency, 2 + 10 + 100);
        // Hot in L1.
        let r = m.data(0x4000, 10);
        assert!(!r.l1_miss);
        assert_eq!(r.latency, 2);
        // Different L1 line, same L2 line (128B): L1 miss, L2 hit.
        let r = m.data(0x4020, 20);
        assert!(r.l1_miss && !r.l2_miss);
        assert_eq!(r.latency, 2 + 10);
    }

    #[test]
    fn bus_occupancy_serializes_misses() {
        let mut m =
            MemHierarchy::new((64, 1, 32, 1), (64, 1, 32, 2), (256, 1, 128, 10), 100, 32);
        let r1 = m.data(0x10000, 0);
        let r2 = m.data(0x20000, 0); // back-to-back L2 miss queues behind the bus
        assert_eq!(r1.latency, 2 + 10 + 100);
        assert_eq!(r2.latency, 2 + 10 + 32 + 100);
    }

    #[test]
    fn fetch_uses_il1() {
        let mut m =
            MemHierarchy::new((1024, 2, 32, 1), (1024, 2, 32, 2), (8192, 4, 128, 10), 100, 32);
        let r = m.fetch(0x100000, 0);
        assert!(r.l1_miss);
        let r = m.fetch(0x100000, 200);
        assert!(!r.l1_miss);
        assert_eq!(r.latency, 1);
        assert_eq!(m.il1.accesses, 2);
        assert_eq!(m.dl1.accesses, 0);
    }
}
