//! Cycle-level out-of-order superscalar simulator with mini-graph support.
//!
//! This crate models the paper's evaluation machine (§6): a 6-wide,
//! 15-stage, dynamically scheduled core with a 128-entry reorder buffer,
//! 50-entry issue queue, 64-entry load/store queue, 164 physical
//! registers, store-sets load scheduling, a 12Kb hybrid branch predictor
//! with a 2K-entry BTB, and a 32KB/32KB/2MB cache hierarchy in front of
//! 100-cycle memory on a quarter-frequency 16-byte bus.
//!
//! Mini-graph support (§4) adds:
//!
//! * **ALU pipelines** replacing two of the four integer ALUs
//!   ([`SimConfig::mg_integer`]) — integer mini-graphs and singleton ALU
//!   operations execute on them;
//! * a **sliding-window scheduler** ([`SimConfig::mg_integer_memory`]) that
//!   reserves all downstream functional units of an integer-memory handle
//!   at issue (`FU0` + `FUBMP` from the MGHT), limited to one such handle
//!   per cycle;
//! * **MGST-sequenced execution** with whole-graph replay on interior-load
//!   cache misses and handle-PC-based branch prediction and memory
//!   disambiguation;
//! * optional **pair-wise collapsing** ALU pipelines
//!   ([`SimConfig::with_collapsing`]).
//!
//! # Example
//!
//! ```
//! use mg_isa::{Asm, reg, Memory};
//! use mg_profile::record_trace;
//! use mg_uarch::{simulate, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! a.li(reg(1), 100);
//! a.label("top");
//! a.subq(reg(1), 1, reg(1));
//! a.bne(reg(1), "top");
//! a.halt();
//! let prog = a.finish()?;
//! let trace = record_trace(&prog, &mut Memory::new(), None, 1_000_000)?;
//!
//! let stats = simulate(&SimConfig::baseline(), &prog, &trace, &Default::default());
//! assert!(stats.ipc() > 0.5);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
pub mod allocwatch;
pub mod bpred;
pub mod cache;
pub mod config;
pub mod pipeline;
pub mod rename;
pub mod stats;
pub mod storesets;

pub use bpred::{Btb, HybridPredictor, Ras};
pub use cache::{AccessResult, Cache, MemHierarchy};
pub use config::{MgSupport, SimConfig};
pub use pipeline::decode::Predecode;
pub use pipeline::Simulator;
pub use rename::{PReg, RenamedDest, Renamer};
pub use stats::SimStats;
pub use storesets::StoreSets;

use mg_isa::{HandleCatalog, Program};
use mg_profile::Trace;
use std::sync::Arc;

/// Runs one timing simulation: `prog` (baseline or rewritten image), its
/// committed-path `trace`, and the handle `catalog` the image refers to
/// (empty for baseline images).
pub fn simulate(
    cfg: &SimConfig,
    prog: &Program,
    trace: &Trace,
    catalog: &HandleCatalog,
) -> SimStats {
    Simulator::new(cfg.clone(), prog, trace, catalog).run()
}

/// Like [`simulate`], but reuses a predecode plane previously built (by
/// [`Predecode::new`]) for exactly this `prog`/`catalog` pair — callers
/// that simulate one image under many configurations build the plane
/// once and pass it here.
pub fn simulate_with(
    cfg: &SimConfig,
    prog: &Program,
    trace: &Trace,
    catalog: &HandleCatalog,
    predecode: &Arc<Predecode>,
) -> SimStats {
    Simulator::with_predecode(cfg.clone(), prog, trace, catalog, Arc::clone(predecode)).run()
}

/// Prints the stage-attribution timers (perf tuning builds only).
#[cfg(feature = "stagetime")]
pub fn pipeline_stagetime_report() {
    pipeline::stagetime::report();
}

/// Zeroes the stage-attribution timers (perf tuning builds only).
#[cfg(feature = "stagetime")]
pub fn pipeline_stagetime_reset() {
    pipeline::stagetime::reset();
}
