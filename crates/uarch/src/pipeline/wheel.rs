//! Calendar-queue ("event-wheel") completion scheduling.
//!
//! The simulator used to keep pending completions in a
//! `BTreeMap<u64, Vec<u64>>`, paying a tree lookup plus `Vec` churn every
//! cycle. The wheel replaces that with the same future-cycle ring pattern
//! the reservation tables use (`RESV_RING`): events due within the
//! horizon live in `ring[due % EVENT_RING]`, so scheduling and per-cycle
//! harvesting are O(1); the rare event beyond the horizon (an L2 or
//! memory miss on a very slow configuration) waits in an overflow
//! min-heap and is moved into the ring once its cycle enters the horizon.
//!
//! # Ordering contract
//!
//! Events due on the same cycle are delivered in **scheduling order** —
//! exactly the order the old `BTreeMap`'s per-cycle `Vec` preserved —
//! because completion order drives predictor training and fetch
//! redirects. Ring slots append in scheduling order by construction;
//! overflow entries carry a monotonic stamp and, because an event is
//! drained the cycle its due time first enters the horizon (always ahead
//! of any direct insertion for that cycle, which `drain` precedes within
//! the cycle), mixed slots stay FIFO too.

use super::RESV_RING;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wheel horizon in cycles; reuses the reservation-ring span so one
/// modulus covers every future-cycle structure.
pub(crate) const EVENT_RING: usize = RESV_RING;

/// The completion-event calendar: a ring for the near future plus an
/// overflow heap for events beyond the horizon.
pub(crate) struct EventWheel {
    /// `ring[c % EVENT_RING]`: seqs completing at cycle `c`, for `c` in
    /// `[now, now + EVENT_RING)`.
    ring: Vec<Vec<u64>>,
    /// Events due at or beyond `now + EVENT_RING`, ordered by
    /// `(due, stamp)` so draining restores scheduling order.
    overflow: BinaryHeap<Reverse<(u64, u64, u64)>>,
    /// Monotonic insertion stamp for overflow FIFO ordering.
    stamp: u64,
    /// Recycled harvest buffer (keeps one slot's allocation alive).
    scratch: Vec<u64>,
}

impl EventWheel {
    pub(crate) fn new() -> EventWheel {
        EventWheel {
            ring: (0..EVENT_RING).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            stamp: 0,
            scratch: Vec::new(),
        }
    }

    /// Schedules completion of `seq` at cycle `due` (`due > now` for any
    /// event scheduled mid-cycle `now`).
    #[inline]
    pub(crate) fn schedule(&mut self, now: u64, due: u64, seq: u64) {
        // Strictly future: cycle `now`'s slot has already been harvested
        // by the time mid-cycle scheduling runs, so a same-cycle event
        // would be silently misdelivered a whole ring later.
        debug_assert!(due > now, "completion scheduled for the current or a past cycle");
        if due - now < EVENT_RING as u64 {
            self.ring[(due as usize) % EVENT_RING].push(seq);
        } else {
            self.overflow.push(Reverse((due, self.stamp, seq)));
            self.stamp += 1;
        }
    }

    /// Harvests every event due exactly at `now`, in scheduling order,
    /// after pulling newly-in-horizon overflow events into the ring. Hand
    /// the buffer back through [`EventWheel::recycle`].
    pub(crate) fn take_due(&mut self, now: u64) -> Vec<u64> {
        while let Some(&Reverse((due, _, seq))) = self.overflow.peek() {
            debug_assert!(due >= now, "overflow event left in the past");
            if due - now >= EVENT_RING as u64 {
                break;
            }
            self.overflow.pop();
            self.ring[(due as usize) % EVENT_RING].push(seq);
        }
        let slot = (now as usize) % EVENT_RING;
        std::mem::replace(&mut self.ring[slot], std::mem::take(&mut self.scratch))
    }

    /// Returns a harvest buffer so its allocation is reused next cycle.
    #[inline]
    pub(crate) fn recycle(&mut self, mut buf: Vec<u64>) {
        buf.clear();
        self.scratch = buf;
    }

    /// The earliest cycle strictly after `now` with a pending event —
    /// the idle-skip wake-up bound. The current cycle's slot has already
    /// been harvested, so every ring entry sits at `now + 1 ..
    /// now + EVENT_RING` and anything farther is in the overflow heap.
    pub(crate) fn next_due_after(&self, now: u64) -> Option<u64> {
        for off in 1..EVENT_RING as u64 {
            let c = now + off;
            if !self.ring[(c as usize) % EVENT_RING].is_empty() {
                return Some(c);
            }
        }
        self.overflow.peek().map(|&Reverse((due, _, _))| due)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_cycle_events_stay_fifo() {
        let mut w = EventWheel::new();
        w.schedule(0, 5, 10);
        w.schedule(0, 5, 11);
        w.schedule(0, 3, 7);
        assert_eq!(w.take_due(3), vec![7]);
        assert!(w.take_due(4).is_empty());
        assert_eq!(w.take_due(5), vec![10, 11]);
    }

    #[test]
    fn overflow_drains_in_scheduling_order() {
        let mut w = EventWheel::new();
        let far = EVENT_RING as u64 + 40;
        // Two beyond-horizon events for the same cycle, then (much later)
        // an in-horizon event for that cycle: delivery must be
        // scheduling order.
        w.schedule(0, far, 1);
        w.schedule(0, far, 2);
        // Simulator discipline: every cycle harvests (and thus drains)
        // before it schedules, so the drain always wins the slot race.
        let mut now = 0;
        loop {
            assert!(w.take_due(now).is_empty());
            if far - now < EVENT_RING as u64 {
                break;
            }
            now += 1;
        }
        w.schedule(now, far, 3);
        assert_eq!(w.next_due_after(now), Some(far));
        assert_eq!(w.take_due(far), vec![1, 2, 3]);
    }

    #[test]
    fn next_due_covers_ring_and_overflow() {
        let mut w = EventWheel::new();
        assert_eq!(w.next_due_after(0), None);
        w.schedule(0, 1 + 2 * EVENT_RING as u64, 9);
        assert_eq!(w.next_due_after(0), Some(1 + 2 * EVENT_RING as u64));
        w.schedule(0, 17, 4);
        assert_eq!(w.next_due_after(0), Some(17));
        let buf = w.take_due(17);
        assert_eq!(buf, vec![4]);
        w.recycle(buf);
        assert_eq!(w.next_due_after(17), Some(1 + 2 * EVENT_RING as u64));
    }
}
