//! Calendar-queue ("event-wheel") completion scheduling.
//!
//! The simulator used to keep pending completions in a
//! `BTreeMap<u64, Vec<u64>>`, paying a tree lookup plus `Vec` churn every
//! cycle. The wheel replaces that with the same future-cycle ring pattern
//! the reservation tables use (`RESV_RING`): events due within the
//! horizon live in `ring[due % EVENT_RING]`, so scheduling and per-cycle
//! harvesting are O(1); the rare event beyond the horizon (an L2 or
//! memory miss on a very slow configuration) waits in an overflow
//! min-heap and is moved into the ring once its cycle enters the horizon.
//!
//! A per-slot **occupancy bitset** mirrors which ring slots hold events:
//! the idle-skip bound (`next_due_after`) scans four words of bits with
//! trailing-zeros iteration instead of touching up to 255 scattered
//! `Vec` headers, which is what made idle-skip itself a hot spot on
//! stall-heavy configurations.
//!
//! Payloads are opaque `u64`s: the simulator packs `(seq, rob slot)` so
//! delivery needs no search, and the wheel neither knows nor cares.
//!
//! # Ordering contract
//!
//! Events due on the same cycle are delivered in **scheduling order** —
//! exactly the order the old `BTreeMap`'s per-cycle `Vec` preserved —
//! because completion order drives predictor training and fetch
//! redirects. Ring slots append in scheduling order by construction;
//! overflow entries carry a monotonic stamp and, because an event is
//! drained the cycle its due time first enters the horizon (always ahead
//! of any direct insertion for that cycle, which `drain` precedes within
//! the cycle), mixed slots stay FIFO too.

use super::RESV_RING;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Wheel horizon in cycles; reuses the reservation-ring span so one
/// modulus covers every future-cycle structure.
pub(crate) const EVENT_RING: usize = RESV_RING;
/// Occupancy-bitset words covering the ring.
const OCC_WORDS: usize = EVENT_RING / 64;

/// The completion-event calendar: a ring for the near future plus an
/// overflow heap for events beyond the horizon.
pub(crate) struct EventWheel {
    /// `ring[c % EVENT_RING]`: payloads completing at cycle `c`, for `c`
    /// in `[now, now + EVENT_RING)`.
    ring: Vec<Vec<u64>>,
    /// One bit per ring slot: set iff the slot is non-empty. Maintained
    /// by `schedule`/`take_due` so `next_due_after` never walks the ring.
    occ: [u64; OCC_WORDS],
    /// Events due at or beyond `now + EVENT_RING`, ordered by
    /// `(due, stamp)` so draining restores scheduling order.
    overflow: BinaryHeap<Reverse<(u64, u64, u64)>>,
    /// Monotonic insertion stamp for overflow FIFO ordering.
    stamp: u64,
    /// Recycled harvest buffer (keeps one slot's allocation alive).
    scratch: Vec<u64>,
}

impl EventWheel {
    pub(crate) fn new() -> EventWheel {
        EventWheel {
            // Pre-size every slot so steady-state scheduling never
            // allocates (more than issue-width events per cycle is rare).
            ring: (0..EVENT_RING).map(|_| Vec::with_capacity(8)).collect(),
            occ: [0; OCC_WORDS],
            overflow: BinaryHeap::with_capacity(64),
            stamp: 0,
            scratch: Vec::with_capacity(8),
        }
    }

    /// Schedules delivery of `payload` at cycle `due` (`due > now` for any
    /// event scheduled mid-cycle `now`).
    #[inline]
    pub(crate) fn schedule(&mut self, now: u64, due: u64, payload: u64) {
        // Strictly future: cycle `now`'s slot has already been harvested
        // by the time mid-cycle scheduling runs, so a same-cycle event
        // would be silently misdelivered a whole ring later.
        debug_assert!(due > now, "completion scheduled for the current or a past cycle");
        if due - now < EVENT_RING as u64 {
            let slot = (due as usize) % EVENT_RING;
            self.ring[slot].push(payload);
            self.occ[slot >> 6] |= 1u64 << (slot & 63);
        } else {
            self.overflow.push(Reverse((due, self.stamp, payload)));
            self.stamp += 1;
        }
    }

    /// Whether [`EventWheel::take_due`] would do any work at `now`: the
    /// current slot holds events, or an overflow event has entered the
    /// horizon and must drain into the ring *this* cycle (lazier draining
    /// would let a direct insertion for the same slot win the FIFO race
    /// and reorder same-cycle delivery). Callers use this to skip the
    /// harvest (and its buffer swap) on the common empty cycle.
    #[inline]
    pub(crate) fn needs_harvest(&self, now: u64) -> bool {
        let slot = (now as usize) % EVENT_RING;
        self.occ[slot >> 6] & (1u64 << (slot & 63)) != 0
            || self
                .overflow
                .peek()
                .is_some_and(|&Reverse((due, _, _))| due - now < EVENT_RING as u64)
    }

    /// Harvests every event due exactly at `now`, in scheduling order,
    /// after pulling newly-in-horizon overflow events into the ring. Hand
    /// the buffer back through [`EventWheel::recycle`].
    pub(crate) fn take_due(&mut self, now: u64) -> Vec<u64> {
        while let Some(&Reverse((due, _, payload))) = self.overflow.peek() {
            debug_assert!(due >= now, "overflow event left in the past");
            if due - now >= EVENT_RING as u64 {
                break;
            }
            self.overflow.pop();
            let slot = (due as usize) % EVENT_RING;
            self.ring[slot].push(payload);
            self.occ[slot >> 6] |= 1u64 << (slot & 63);
        }
        let slot = (now as usize) % EVENT_RING;
        self.occ[slot >> 6] &= !(1u64 << (slot & 63));
        std::mem::replace(&mut self.ring[slot], std::mem::take(&mut self.scratch))
    }

    /// Returns a harvest buffer so its allocation is reused next cycle.
    #[inline]
    pub(crate) fn recycle(&mut self, mut buf: Vec<u64>) {
        buf.clear();
        self.scratch = buf;
    }

    /// First occupied slot index at or after bit `from`, scanning to the
    /// end of the ring.
    #[inline]
    fn first_occupied_from(&self, from: usize) -> Option<usize> {
        let mut w = from >> 6;
        let mut bits = self.occ[w] & (!0u64 << (from & 63));
        loop {
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
            w += 1;
            if w >= OCC_WORDS {
                return None;
            }
            bits = self.occ[w];
        }
    }

    /// The earliest cycle strictly after `now` with a pending event —
    /// the idle-skip wake-up bound. The current cycle's slot has already
    /// been harvested (clearing its occupancy bit), so every ring entry
    /// sits at `now + 1 .. now + EVENT_RING` and anything farther is in
    /// the overflow heap; the scan is a rotated first-set-bit search over
    /// the occupancy words.
    pub(crate) fn next_due_after(&self, now: u64) -> Option<u64> {
        let base = ((now as usize) + 1) % EVENT_RING;
        let hit = self.first_occupied_from(base).or_else(|| self.first_occupied_from(0));
        if let Some(slot) = hit {
            let off = (slot + EVENT_RING - base) % EVENT_RING;
            return Some(now + 1 + off as u64);
        }
        // Ring empty: any pending event is beyond the horizon.
        self.overflow.peek().map(|&Reverse((due, _, _))| due)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_cycle_events_stay_fifo() {
        let mut w = EventWheel::new();
        w.schedule(0, 5, 10);
        w.schedule(0, 5, 11);
        w.schedule(0, 3, 7);
        assert_eq!(w.take_due(3), vec![7]);
        assert!(w.take_due(4).is_empty());
        assert_eq!(w.take_due(5), vec![10, 11]);
    }

    #[test]
    fn overflow_drains_in_scheduling_order() {
        let mut w = EventWheel::new();
        let far = EVENT_RING as u64 + 40;
        // Two beyond-horizon events for the same cycle, then (much later)
        // an in-horizon event for that cycle: delivery must be
        // scheduling order.
        w.schedule(0, far, 1);
        w.schedule(0, far, 2);
        // Simulator discipline: every cycle harvests (and thus drains)
        // before it schedules, so the drain always wins the slot race.
        let mut now = 0;
        loop {
            assert!(w.take_due(now).is_empty());
            if far - now < EVENT_RING as u64 {
                break;
            }
            now += 1;
        }
        w.schedule(now, far, 3);
        assert_eq!(w.next_due_after(now), Some(far));
        assert_eq!(w.take_due(far), vec![1, 2, 3]);
    }

    #[test]
    fn next_due_covers_ring_and_overflow() {
        let mut w = EventWheel::new();
        assert_eq!(w.next_due_after(0), None);
        w.schedule(0, 1 + 2 * EVENT_RING as u64, 9);
        assert_eq!(w.next_due_after(0), Some(1 + 2 * EVENT_RING as u64));
        w.schedule(0, 17, 4);
        assert_eq!(w.next_due_after(0), Some(17));
        let buf = w.take_due(17);
        assert_eq!(buf, vec![4]);
        w.recycle(buf);
        assert_eq!(w.next_due_after(17), Some(1 + 2 * EVENT_RING as u64));
    }

    #[test]
    fn next_due_wraps_the_ring() {
        let mut w = EventWheel::new();
        // Place `now` late in the ring so the due slot wraps below the
        // base index: the rotated occupancy scan must still find it.
        let now = EVENT_RING as u64 - 3;
        let due = now + 20; // slot (now + 20) % 256 = 17, below base 254
        w.schedule(now, due, 1);
        assert_eq!(w.next_due_after(now), Some(due));
        assert!(w.take_due(due - 1).is_empty());
        assert_eq!(w.take_due(due), vec![1]);
        let empty = w.take_due(due + 1); // empty; exercises bit clearing
        assert!(empty.is_empty());
        w.recycle(empty);
        assert_eq!(w.next_due_after(due), None);
    }

    #[test]
    fn occupancy_bit_clears_on_harvest() {
        let mut w = EventWheel::new();
        w.schedule(0, 5, 1);
        w.schedule(0, 5, 2);
        assert_eq!(w.next_due_after(0), Some(5));
        let buf = w.take_due(5);
        assert_eq!(buf, vec![1, 2]);
        w.recycle(buf);
        assert_eq!(w.next_due_after(5), None, "harvested slot must clear its bit");
    }
}
