//! The cycle-level out-of-order pipeline.
//!
//! A trace-driven model of the paper's 15-stage, 6-wide superscalar core,
//! organized as one submodule per stage behind the [`Simulator`] façade:
//!
//! * [`front`] — fetch (branch-predicted, I$-limited) and decode/rename
//!   (width- and resource-limited; this is where handles amplify
//!   bandwidth and capacity);
//! * [`issue`] — FU, write-port, and sliding-window constrained issue;
//! * [`execute`] — event-scheduled completion; D$ hierarchy; store-set
//!   load scheduling with violation squashes; MGST-sequenced mini-graph
//!   execution with interior-load replay;
//! * [`commit`] — width-limited retirement, freeing registers;
//! * [`entries`] — the in-flight structures (ROB/LQ/SQ/front-queue
//!   entries) those stages share.
//!
//! Wrong-path instructions are not simulated: a mispredicted control
//! transfer stalls fetch until it resolves, then the front-end refills —
//! reproducing the misprediction penalty of the paper's pipeline without
//! wrong-path cache pollution (see `DESIGN.md` §2 for the substitution
//! argument).

pub(crate) mod commit;
pub(crate) mod entries;
pub(crate) mod execute;
pub(crate) mod front;
pub(crate) mod issue;
#[cfg(test)]
mod tests;

use crate::bpred::{Btb, HybridPredictor, Ras};
use crate::cache::MemHierarchy;
use crate::config::SimConfig;
use crate::rename::Renamer;
use crate::stats::SimStats;
use crate::storesets::StoreSets;
use entries::{FrontOp, LqEntry, RobEntry, SqEntry};
use mg_core::MgTable;
use mg_isa::{HandleCatalog, Program};
use mg_profile::Trace;
use std::collections::{BTreeMap, VecDeque};

/// Ring size for near-future resource reservations (FUs, write ports).
pub(crate) const RESV_RING: usize = 256;
/// Maximum instruction-cache lines fetch may touch per cycle.
pub(crate) const MAX_FETCH_LINES: u32 = 2;

/// The trace-driven cycle-level simulator.
///
/// Construct with [`Simulator::new`], run with [`Simulator::run`].
pub struct Simulator<'a> {
    pub(crate) cfg: SimConfig,
    pub(crate) prog: &'a Program,
    pub(crate) trace: &'a Trace,
    pub(crate) mgt: MgTable,
    // Front end.
    pub(crate) fetch_ptr: usize,
    pub(crate) fetch_resume_at: u64,
    pub(crate) fetch_blocked_on: Option<usize>,
    pub(crate) frontq: VecDeque<FrontOp>,
    // Back end.
    pub(crate) rob: VecDeque<RobEntry>,
    pub(crate) next_seq: u64,
    pub(crate) iq_used: usize,
    pub(crate) renamer: Renamer,
    pub(crate) preg_ready: Vec<u64>,
    pub(crate) lq: VecDeque<LqEntry>,
    pub(crate) sq: VecDeque<SqEntry>,
    // Predictors and memory.
    pub(crate) bpred: HybridPredictor,
    pub(crate) btb: Btb,
    pub(crate) ras: Ras,
    pub(crate) storesets: StoreSets,
    pub(crate) mem: MemHierarchy,
    // Events and reservations.
    pub(crate) events: BTreeMap<u64, Vec<u64>>,
    pub(crate) resv_fu: Vec<[u16; 4]>, // [ap, alu, load, store] per future cycle
    pub(crate) resv_wb: Vec<u16>,
    pub(crate) now: u64,
    pub(crate) stats: SimStats,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the rewritten `prog`, its committed-path
    /// `trace`, and the mini-graph `catalog` used by the image (pass an
    /// empty catalog for baseline images).
    pub fn new(
        cfg: SimConfig,
        prog: &'a Program,
        trace: &'a Trace,
        catalog: &HandleCatalog,
    ) -> Simulator<'a> {
        let mgt = MgTable::from_catalog(catalog, &cfg.mgt_config());
        let renamer = Renamer::new(cfg.phys_regs);
        let preg_ready = vec![0u64; cfg.phys_regs];
        Simulator {
            mgt,
            renamer,
            preg_ready,
            fetch_ptr: 0,
            fetch_resume_at: 0,
            fetch_blocked_on: None,
            frontq: VecDeque::new(),
            rob: VecDeque::new(),
            next_seq: 0,
            iq_used: 0,
            lq: VecDeque::new(),
            sq: VecDeque::new(),
            bpred: HybridPredictor::paper_12kb(),
            btb: Btb::paper_2k(),
            ras: Ras::new(16),
            storesets: StoreSets::default_size(),
            mem: MemHierarchy::new(
                cfg.il1,
                cfg.dl1,
                cfg.l2,
                cfg.mem_latency,
                cfg.mem_bus_occupancy,
            ),
            events: BTreeMap::new(),
            resv_fu: vec![[0; 4]; RESV_RING],
            resv_wb: vec![0; RESV_RING],
            now: 0,
            stats: SimStats::default(),
            cfg,
            prog,
            trace,
        }
    }

    /// Runs the whole trace (or `cfg.max_ops` operations) to completion and
    /// returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the image contains integer-memory handles but the machine
    /// has no sliding-window scheduler, or handles with no mini-graph
    /// support at all (selection policy and machine must agree).
    pub fn run(mut self) -> SimStats {
        let limit = if self.cfg.max_ops == 0 {
            self.trace.ops.len()
        } else {
            (self.cfg.max_ops as usize).min(self.trace.ops.len())
        };
        // Guard against pathological configs: bound total cycles.
        let cycle_cap = 2_000 + 600 * limit as u64;
        while !(self.fetch_ptr >= limit && self.frontq.is_empty() && self.rob.is_empty()) {
            self.commit();
            self.process_events();
            self.issue();
            self.dispatch();
            self.fetch(limit);
            self.stats.preg_occupancy_sum += self.renamer.in_use() as u64;
            self.stats.iq_occupancy_sum += self.iq_used as u64;
            self.stats.rob_occupancy_sum += self.rob.len() as u64;
            let idx = (self.now as usize) % RESV_RING;
            self.resv_fu[idx] = [0; 4];
            self.resv_wb[idx] = 0;
            self.now += 1;
            assert!(
                self.now < cycle_cap,
                "simulation wedged at cycle {} (fetch {}/{} rob {})",
                self.now,
                self.fetch_ptr,
                limit,
                self.rob.len()
            );
        }
        self.stats.cycles = self.now;
        self.stats.il1_accesses = self.mem.il1.accesses;
        self.stats.il1_misses = self.mem.il1.misses;
        self.stats.dl1_accesses = self.mem.dl1.accesses;
        self.stats.dl1_misses = self.mem.dl1.misses;
        self.stats.l2_accesses = self.mem.l2.accesses;
        self.stats.l2_misses = self.mem.l2.misses;
        self.stats
    }

    pub(crate) fn rob_index(&self, seq: u64) -> Option<usize> {
        // Sequence numbers are unique and increasing but NOT contiguous:
        // violation squashes pop the tail without rolling back the
        // allocator (so stale completion events can never alias a newer
        // entry). Binary-search by sequence.
        let i = self.rob.partition_point(|e| e.seq < seq);
        (i < self.rob.len() && self.rob[i].seq == seq).then_some(i)
    }
}
