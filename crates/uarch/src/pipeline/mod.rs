//! The cycle-level out-of-order pipeline.
//!
//! A trace-driven model of the paper's 15-stage, 6-wide superscalar core,
//! organized as one submodule per stage behind the [`Simulator`] façade:
//!
//! * `front` — fetch (branch-predicted, I$-limited) and decode/rename
//!   (width- and resource-limited; this is where handles amplify
//!   bandwidth and capacity);
//! * `issue` — FU, write-port, and sliding-window constrained issue;
//! * `execute` — event-scheduled completion; D$ hierarchy; store-set
//!   load scheduling with violation squashes; MGST-sequenced mini-graph
//!   execution with interior-load replay;
//! * `commit` — width-limited retirement, freeing registers;
//! * `entries` — the struct-of-arrays in-flight state (ROB/LQ/SQ/
//!   front-queue rings and their flag bitsets) those stages share;
//! * `decode` — the per-static-instruction predecode plane, shareable
//!   across simulations of the same image.
//!
//! Wrong-path instructions are not simulated: a mispredicted control
//! transfer stalls fetch until it resolves, then the front-end refills —
//! reproducing the misprediction penalty of the paper's pipeline without
//! wrong-path cache pollution (see `DESIGN.md` §2 for the substitution
//! argument).
//!
//! The simulator is **resumable**: [`Simulator::advance`] pauses between
//! cycles once fetch reaches a caller-chosen trace position, which is
//! what lets the harness advance several configurations of one workload
//! in lockstep over shared, cache-resident trace and predecode state
//! (fused sweeps) while producing bit-identical statistics.

#[cfg(feature = "stagetime")]
#[allow(missing_docs)]
pub mod stagetime {
    //! Temporary rdtsc-based stage cost attribution (perf tuning only).
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    pub static BUCKETS: [AtomicU64; 16] = [const { AtomicU64::new(0) }; 16];
    pub const NAMES: [&str; 16] = [
        "commit",
        "events",
        "wakes",
        "issue",
        "dispatch",
        "fetch",
        "cycle-misc",
        "cycles",
        "i.park",
        "i.wsblock",
        "i.denied",
        "i.pre",
        "i.lat",
        "i.memfx",
        "n.park",
        "n.issue",
    ];
    #[inline(always)]
    pub fn stamp() -> u64 {
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[inline(always)]
    pub fn add(i: usize, dt: u64) {
        BUCKETS[i].fetch_add(dt, Relaxed);
    }
    pub fn report() {
        let cycles = BUCKETS[7].load(Relaxed).max(1);
        for (n, b) in NAMES.iter().zip(&BUCKETS) {
            let v = b.load(Relaxed);
            println!("  {n:10} {v:>14} tsc  {:>8.1} tsc/cyc", v as f64 / cycles as f64);
        }
    }
    pub fn reset() {
        for b in &BUCKETS {
            b.store(0, Relaxed);
        }
    }
}

pub(crate) mod commit;
pub mod decode;
pub(crate) mod entries;
pub(crate) mod execute;
pub(crate) mod front;
pub(crate) mod issue;
#[cfg(test)]
mod tests;
pub(crate) mod wheel;

use crate::bpred::{Btb, HybridPredictor, Ras};
use crate::cache::MemHierarchy;
use crate::config::SimConfig;
use crate::rename::Renamer;
use crate::stats::SimStats;
use crate::storesets::StoreSets;
use decode::{MgtLanes, Predecode};
use entries::{FrontQ, MemQ, Rob};
use mg_core::MgTable;
use mg_isa::{HandleCatalog, Program};
use mg_profile::Trace;
use std::sync::Arc;
use wheel::EventWheel;

/// Ring size for near-future resource reservations (FUs, write ports).
pub(crate) const RESV_RING: usize = 256;
/// Maximum instruction-cache lines fetch may touch per cycle.
pub(crate) const MAX_FETCH_LINES: u32 = 2;

/// The trace-driven cycle-level simulator.
///
/// Construct with [`Simulator::new`] (or [`Simulator::with_predecode`]
/// to share one predecode plane across runs), run to completion with
/// [`Simulator::run`], or step incrementally with
/// [`Simulator::advance`] + [`Simulator::into_stats`].
pub struct Simulator<'a> {
    pub(crate) cfg: SimConfig,
    pub(crate) prog: &'a Program,
    pub(crate) trace: &'a Trace,
    /// Config-independent per-static-instruction decode lanes.
    pub(crate) pd: Arc<Predecode>,
    /// Config-dependent flattened MGT lanes.
    pub(crate) mg: MgtLanes,
    // Front end.
    pub(crate) fetch_ptr: usize,
    pub(crate) fetch_resume_at: u64,
    pub(crate) fetch_blocked_on: Option<usize>,
    pub(crate) frontq: FrontQ,
    // Back end.
    pub(crate) rob: Rob,
    pub(crate) next_seq: u64,
    pub(crate) iq_used: usize,
    pub(crate) renamer: Renamer,
    pub(crate) preg_ready: Vec<u64>,
    pub(crate) lq: MemQ,
    pub(crate) sq: MemQ,
    // Predictors and memory.
    pub(crate) bpred: HybridPredictor,
    pub(crate) btb: Btb,
    pub(crate) ras: Ras,
    pub(crate) storesets: StoreSets,
    pub(crate) mem: MemHierarchy,
    // Events and reservations.
    pub(crate) events: EventWheel,
    /// Operand-readiness wake calendar: when the issue scan finds an
    /// entry whose sources become ready at a *known* future cycle, it
    /// clears the entry's `poll` bit and schedules a wake here; the wake
    /// re-sets the bit that cycle. Payloads are the same packed
    /// `(seq << 16) | slot` as completion events.
    pub(crate) wakes: EventWheel,
    /// Per-physical-register waiter lists for entries blocked on a
    /// producer that has not itself issued (so its ready cycle is
    /// unknown). The producer's issue drains its destination's list into
    /// `wakes` at the operands' actual ready cycle. Entries are packed
    /// `(seq << 16) | slot`; stale (squashed) waiters are filtered at
    /// wake delivery.
    pub(crate) preg_waiters: Vec<Vec<u64>>,
    pub(crate) resv_fu: Vec<[u16; 4]>, // [ap, alu, load, store] per future cycle
    pub(crate) resv_wb: Vec<u16>,
    pub(crate) now: u64,
    pub(crate) stats: SimStats,
    // Run bookkeeping (fields so `advance` can pause and resume).
    /// Number of trace operations this run simulates.
    pub(crate) limit: usize,
    /// Cycles actually simulated (idle-skipped spans excluded).
    pub(crate) worked: u64,
    /// Wedge bound on `worked` (see [`Simulator::advance`]).
    pub(crate) cycle_cap: u64,
    // Idle-skip bookkeeping, reset every cycle (see `advance`).
    /// Machine state changed this cycle (commit/complete/issue/dispatch/
    /// fetch touched something beyond the per-cycle stat sums).
    pub(crate) progress: bool,
    /// An operand-ready operation was denied only by this cycle's FU /
    /// write-port / window availability; those constraints are functions
    /// of `now`, so the next cycle must be simulated, not skipped.
    pub(crate) retry_next_cycle: bool,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the rewritten `prog`, its committed-path
    /// `trace`, and the mini-graph `catalog` used by the image (pass an
    /// empty catalog for baseline images).
    pub fn new(
        cfg: SimConfig,
        prog: &'a Program,
        trace: &'a Trace,
        catalog: &HandleCatalog,
    ) -> Simulator<'a> {
        let pd = Arc::new(Predecode::new(prog, catalog));
        Simulator::with_predecode(cfg, prog, trace, catalog, pd)
    }

    /// Like [`Simulator::new`], but reuses a predecode plane previously
    /// built (by [`Predecode::new`]) for exactly this `prog`/`catalog`
    /// pair — the sharing hook for fused sweeps and warm re-runs.
    pub fn with_predecode(
        cfg: SimConfig,
        prog: &'a Program,
        trace: &'a Trace,
        catalog: &HandleCatalog,
        predecode: Arc<Predecode>,
    ) -> Simulator<'a> {
        debug_assert_eq!(
            predecode.kind.len(),
            prog.insts.len(),
            "predecode plane built for a different program"
        );
        let mgt = MgTable::from_catalog(catalog, &cfg.mgt_config());
        let mg = MgtLanes::new(&mgt);
        let renamer = Renamer::new(cfg.phys_regs);
        let preg_ready = vec![0u64; cfg.phys_regs];
        let limit = if cfg.max_ops == 0 {
            trace.ops.len()
        } else {
            (cfg.max_ops as usize).min(trace.ops.len())
        };
        // Guard against pathological configs: bound *worked* cycles (the
        // ones actually simulated). Idle-skipped spans are excluded, so a
        // legitimately long-latency configuration (slow memory, deep
        // queues) cannot trip the wedge assertion just by waiting.
        let cycle_cap = 2_000 + 600 * limit as u64;
        let frontq = FrontQ::new((cfg.front_width * cfg.frontend_depth) as usize);
        let rob = Rob::new(cfg.rob_size);
        let lq = MemQ::new(cfg.lq_size);
        let sq = MemQ::new(cfg.sq_size);
        Simulator {
            pd: predecode,
            mg,
            renamer,
            preg_ready,
            fetch_ptr: 0,
            fetch_resume_at: 0,
            fetch_blocked_on: None,
            frontq,
            rob,
            next_seq: 0,
            iq_used: 0,
            lq,
            sq,
            bpred: HybridPredictor::paper_12kb(),
            btb: Btb::paper_2k(),
            ras: Ras::new(16),
            storesets: StoreSets::default_size(),
            mem: MemHierarchy::new(
                cfg.il1,
                cfg.dl1,
                cfg.l2,
                cfg.mem_latency,
                cfg.mem_bus_occupancy,
            ),
            events: EventWheel::new(),
            wakes: EventWheel::new(),
            // Capacity is a hard bound so steady state never allocates:
            // every live waiter is a distinct unissued scheduler entry
            // (at most `iq_size`), and registration compacts stale
            // entries away before it could ever exceed that.
            preg_waiters: (0..cfg.phys_regs)
                .map(|_| Vec::with_capacity(cfg.iq_size + 1))
                .collect(),
            resv_fu: vec![[0; 4]; RESV_RING],
            resv_wb: vec![0; RESV_RING],
            now: 0,
            stats: SimStats::default(),
            limit,
            worked: 0,
            cycle_cap,
            progress: false,
            retry_next_cycle: false,
            cfg,
            prog,
            trace,
        }
    }

    /// Runs the whole trace (or `cfg.max_ops` operations) to completion and
    /// returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the image contains integer-memory handles but the machine
    /// has no sliding-window scheduler, or handles with no mini-graph
    /// support at all (selection policy and machine must agree).
    pub fn run(mut self) -> SimStats {
        let done = self.advance(usize::MAX);
        debug_assert!(done, "unbounded advance must drain the machine");
        self.into_stats()
    }

    /// Simulates cycles until either the machine drains (returns `true`)
    /// or — checked between cycles, so pausing perturbs nothing — fetch
    /// has reached trace position `fetch_target` (returns `false`).
    ///
    /// Callers resume by calling again with a larger target; a squash may
    /// move fetch *backwards* past an already-satisfied target, in which
    /// case the resumed call simply simulates further. Passing
    /// `usize::MAX` runs to completion.
    ///
    /// # Panics
    ///
    /// As [`Simulator::run`]; additionally asserts the wedge bound on
    /// worked cycles.
    pub fn advance(&mut self, fetch_target: usize) -> bool {
        while !(self.fetch_ptr >= self.limit && self.frontq.is_empty() && self.rob.is_empty()) {
            if self.fetch_ptr >= fetch_target {
                return false;
            }
            // Hot-path allocation tripwire (debug builds, armed test
            // harnesses only): a simulated cycle must not touch the heap.
            #[cfg(debug_assertions)]
            let alloc_mark = crate::allocwatch::count();
            self.progress = false;
            self.retry_next_cycle = false;
            let stalls_before = [
                self.stats.stall_pregs,
                self.stats.stall_rob,
                self.stats.stall_iq,
                self.stats.stall_lsq,
            ];
            #[cfg(feature = "stagetime")]
            let mut t0 = stagetime::stamp();
            #[cfg(feature = "stagetime")]
            macro_rules! lap {
                ($i:expr) => {{
                    let t1 = stagetime::stamp();
                    stagetime::add($i, t1 - t0);
                    t0 = t1;
                }};
            }
            #[cfg(not(feature = "stagetime"))]
            macro_rules! lap {
                ($i:expr) => {};
            }
            self.commit();
            lap!(0);
            self.process_events();
            lap!(1);
            self.deliver_wakes();
            lap!(2);
            self.issue();
            lap!(3);
            self.dispatch();
            lap!(4);
            self.fetch(self.limit);
            lap!(5);
            self.stats.preg_occupancy_sum += self.renamer.in_use() as u64;
            self.stats.iq_occupancy_sum += self.iq_used as u64;
            self.stats.rob_occupancy_sum += self.rob.len() as u64;
            let idx = (self.now as usize) % RESV_RING;
            self.resv_fu[idx] = [0; 4];
            self.resv_wb[idx] = 0;
            self.worked += 1;
            assert!(
                self.worked < self.cycle_cap,
                "simulation wedged after {} worked cycles at cycle {} (fetch {}/{} rob {})",
                self.worked,
                self.now,
                self.fetch_ptr,
                self.limit,
                self.rob.len()
            );
            #[cfg(debug_assertions)]
            crate::allocwatch::check(alloc_mark);
            lap!(6);
            #[cfg(feature = "stagetime")]
            stagetime::add(7, 1);
            // Idle-cycle skipping: a cycle that changed nothing would be
            // followed by identical empty cycles until the next wake-up
            // (completion event, operand-ready bound, front-queue ready
            // time, or fetch resume) — jump straight there, accumulating
            // the per-cycle stats the skipped cycles would have gathered.
            if !self.progress && !self.retry_next_cycle {
                if let Some(wake) = self.next_wake(self.limit) {
                    if wake > self.now + 1 {
                        self.skip_idle_to(wake, stalls_before);
                        continue;
                    }
                }
            }
            self.now += 1;
        }
        true
    }

    /// Consumes the (drained) simulator and finalizes its statistics.
    pub fn into_stats(self) -> SimStats {
        let mut stats = self.stats;
        stats.cycles = self.now;
        stats.il1_accesses = self.mem.il1.accesses;
        stats.il1_misses = self.mem.il1.misses;
        stats.dl1_accesses = self.mem.dl1.accesses;
        stats.dl1_misses = self.mem.dl1.misses;
        stats.l2_accesses = self.mem.l2.accesses;
        stats.l2_misses = self.mem.l2.misses;
        stats
    }

    /// Logical ROB index (0 = oldest) of the live entry with sequence
    /// `seq`, or `None` if it was squashed or retired. The hot paths
    /// carry `(seq, slot)` pairs instead; this resolver remains for
    /// diagnostics and tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn rob_index(&self, seq: u64) -> Option<usize> {
        self.rob.find_seq(seq)
    }

    /// The earliest future cycle at which a zero-progress machine can
    /// change state: the next completion event, the next operand-ready
    /// wake, the front-queue head's decode-ready time, or the fetch
    /// resume cycle. Waking *early* is merely a missed
    /// optimisation (the cycle re-evaluates as idle); waking late would
    /// change timing, so every state-changing trigger must be covered
    /// here or in `retry_next_cycle`.
    fn next_wake(&self, limit: usize) -> Option<u64> {
        let mut wake = self.events.next_due_after(self.now);
        let mut fold = |t: u64| wake = Some(wake.map_or(t, |w: u64| w.min(t)));
        if let Some(t) = self.wakes.next_due_after(self.now) {
            fold(t);
        }
        if !self.rob.is_empty() {
            // Passive completion: the head becomes retirable the cycle
            // after its `completed_at` (younger completed entries cannot
            // change state before the head retires).
            let t = self.rob.completed_at[self.rob.head_slot()];
            if t != u64::MAX {
                fold(t + 1);
            }
        }
        if !self.frontq.is_empty() {
            let ready = self.frontq.ready_at[self.frontq.head_slot()];
            if ready > self.now {
                fold(ready);
            }
        }
        if self.fetch_blocked_on.is_none()
            && self.fetch_ptr < limit
            && self.fetch_resume_at > self.now
        {
            fold(self.fetch_resume_at);
        }
        wake
    }

    /// Advances `now` to `wake` across an idle span, accumulating the
    /// per-cycle statistics the skipped cycles would have gathered (the
    /// occupancy sums, and the dispatch stall counter the idle cycle hit,
    /// both frozen across the span because nothing changes state) and
    /// clearing the reservation-ring slots those cycles would have
    /// recycled.
    fn skip_idle_to(&mut self, wake: u64, stalls_before: [u64; 4]) {
        let skipped = wake - self.now - 1; // cycles now+1 ..= wake-1
        self.stats.preg_occupancy_sum += skipped * self.renamer.in_use() as u64;
        self.stats.iq_occupancy_sum += skipped * self.iq_used as u64;
        self.stats.rob_occupancy_sum += skipped * self.rob.len() as u64;
        self.stats.stall_pregs += skipped * (self.stats.stall_pregs - stalls_before[0]);
        self.stats.stall_rob += skipped * (self.stats.stall_rob - stalls_before[1]);
        self.stats.stall_iq += skipped * (self.stats.stall_iq - stalls_before[2]);
        self.stats.stall_lsq += skipped * (self.stats.stall_lsq - stalls_before[3]);
        if skipped >= RESV_RING as u64 {
            self.resv_fu.iter_mut().for_each(|s| *s = [0; 4]);
            self.resv_wb.iter_mut().for_each(|s| *s = 0);
        } else {
            for c in (self.now + 1)..wake {
                let idx = (c as usize) % RESV_RING;
                self.resv_fu[idx] = [0; 4];
                self.resv_wb[idx] = 0;
            }
        }
        self.now = wake;
    }
}
