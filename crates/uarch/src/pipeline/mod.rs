//! The cycle-level out-of-order pipeline.
//!
//! A trace-driven model of the paper's 15-stage, 6-wide superscalar core,
//! organized as one submodule per stage behind the [`Simulator`] façade:
//!
//! * `front` — fetch (branch-predicted, I$-limited) and decode/rename
//!   (width- and resource-limited; this is where handles amplify
//!   bandwidth and capacity);
//! * `issue` — FU, write-port, and sliding-window constrained issue;
//! * `execute` — event-scheduled completion; D$ hierarchy; store-set
//!   load scheduling with violation squashes; MGST-sequenced mini-graph
//!   execution with interior-load replay;
//! * `commit` — width-limited retirement, freeing registers;
//! * `entries` — the in-flight structures (ROB/LQ/SQ/front-queue
//!   entries) those stages share.
//!
//! Wrong-path instructions are not simulated: a mispredicted control
//! transfer stalls fetch until it resolves, then the front-end refills —
//! reproducing the misprediction penalty of the paper's pipeline without
//! wrong-path cache pollution (see `DESIGN.md` §2 for the substitution
//! argument).

pub(crate) mod commit;
pub(crate) mod entries;
pub(crate) mod execute;
pub(crate) mod front;
pub(crate) mod issue;
#[cfg(test)]
mod tests;
pub(crate) mod wheel;

use crate::bpred::{Btb, HybridPredictor, Ras};
use crate::cache::MemHierarchy;
use crate::config::SimConfig;
use crate::rename::Renamer;
use crate::stats::SimStats;
use crate::storesets::StoreSets;
use entries::{FrontOp, LqEntry, RobEntry, SqEntry};
use mg_core::MgTable;
use mg_isa::{HandleCatalog, Program};
use mg_profile::Trace;
use std::collections::VecDeque;
use wheel::EventWheel;

/// Ring size for near-future resource reservations (FUs, write ports).
pub(crate) const RESV_RING: usize = 256;
/// Maximum instruction-cache lines fetch may touch per cycle.
pub(crate) const MAX_FETCH_LINES: u32 = 2;

/// The trace-driven cycle-level simulator.
///
/// Construct with [`Simulator::new`], run with [`Simulator::run`].
pub struct Simulator<'a> {
    pub(crate) cfg: SimConfig,
    pub(crate) prog: &'a Program,
    pub(crate) trace: &'a Trace,
    pub(crate) mgt: MgTable,
    // Front end.
    pub(crate) fetch_ptr: usize,
    pub(crate) fetch_resume_at: u64,
    pub(crate) fetch_blocked_on: Option<usize>,
    pub(crate) frontq: VecDeque<FrontOp>,
    // Back end.
    pub(crate) rob: VecDeque<RobEntry>,
    pub(crate) next_seq: u64,
    pub(crate) iq_used: usize,
    pub(crate) iq_unissued: usize,
    pub(crate) renamer: Renamer,
    pub(crate) preg_ready: Vec<u64>,
    pub(crate) lq: VecDeque<LqEntry>,
    pub(crate) sq: VecDeque<SqEntry>,
    // Predictors and memory.
    pub(crate) bpred: HybridPredictor,
    pub(crate) btb: Btb,
    pub(crate) ras: Ras,
    pub(crate) storesets: StoreSets,
    pub(crate) mem: MemHierarchy,
    // Events and reservations.
    pub(crate) events: EventWheel,
    pub(crate) resv_fu: Vec<[u16; 4]>, // [ap, alu, load, store] per future cycle
    pub(crate) resv_wb: Vec<u16>,
    pub(crate) now: u64,
    pub(crate) stats: SimStats,
    // Idle-skip bookkeeping, reset every cycle (see `run`).
    /// Machine state changed this cycle (commit/complete/issue/dispatch/
    /// fetch touched something beyond the per-cycle stat sums).
    pub(crate) progress: bool,
    /// An operand-ready operation was denied only by this cycle's FU /
    /// write-port / window availability; those constraints are functions
    /// of `now`, so the next cycle must be simulated, not skipped.
    pub(crate) retry_next_cycle: bool,
    /// Earliest cycle at which some operand-blocked scheduler entry has
    /// all sources ready (`preg_ready` bound collected by the issue scan).
    pub(crate) wake_operands: Option<u64>,
    /// Lower bound on unissued sequence numbers: every ROB entry older
    /// than this has issued, so the issue scan starts past it. Entries
    /// never revert to unissued and newcomers take fresh seqs, so the
    /// bound only ever advances.
    pub(crate) issue_hint: u64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the rewritten `prog`, its committed-path
    /// `trace`, and the mini-graph `catalog` used by the image (pass an
    /// empty catalog for baseline images).
    pub fn new(
        cfg: SimConfig,
        prog: &'a Program,
        trace: &'a Trace,
        catalog: &HandleCatalog,
    ) -> Simulator<'a> {
        let mgt = MgTable::from_catalog(catalog, &cfg.mgt_config());
        let renamer = Renamer::new(cfg.phys_regs);
        let preg_ready = vec![0u64; cfg.phys_regs];
        Simulator {
            mgt,
            renamer,
            preg_ready,
            fetch_ptr: 0,
            fetch_resume_at: 0,
            fetch_blocked_on: None,
            frontq: VecDeque::new(),
            rob: VecDeque::new(),
            next_seq: 0,
            iq_used: 0,
            iq_unissued: 0,
            lq: VecDeque::new(),
            sq: VecDeque::new(),
            bpred: HybridPredictor::paper_12kb(),
            btb: Btb::paper_2k(),
            ras: Ras::new(16),
            storesets: StoreSets::default_size(),
            mem: MemHierarchy::new(
                cfg.il1,
                cfg.dl1,
                cfg.l2,
                cfg.mem_latency,
                cfg.mem_bus_occupancy,
            ),
            events: EventWheel::new(),
            resv_fu: vec![[0; 4]; RESV_RING],
            resv_wb: vec![0; RESV_RING],
            now: 0,
            stats: SimStats::default(),
            progress: false,
            retry_next_cycle: false,
            wake_operands: None,
            issue_hint: 0,
            cfg,
            prog,
            trace,
        }
    }

    /// Runs the whole trace (or `cfg.max_ops` operations) to completion and
    /// returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the image contains integer-memory handles but the machine
    /// has no sliding-window scheduler, or handles with no mini-graph
    /// support at all (selection policy and machine must agree).
    pub fn run(mut self) -> SimStats {
        let limit = if self.cfg.max_ops == 0 {
            self.trace.ops.len()
        } else {
            (self.cfg.max_ops as usize).min(self.trace.ops.len())
        };
        // Guard against pathological configs: bound *worked* cycles (the
        // ones actually simulated). Idle-skipped spans are excluded, so a
        // legitimately long-latency configuration (slow memory, deep
        // queues) cannot trip the wedge assertion just by waiting.
        let cycle_cap = 2_000 + 600 * limit as u64;
        let mut worked: u64 = 0;
        while !(self.fetch_ptr >= limit && self.frontq.is_empty() && self.rob.is_empty()) {
            self.progress = false;
            self.retry_next_cycle = false;
            self.wake_operands = None;
            let stalls_before = [
                self.stats.stall_pregs,
                self.stats.stall_rob,
                self.stats.stall_iq,
                self.stats.stall_lsq,
            ];
            self.commit();
            self.process_events();
            self.issue();
            self.dispatch();
            self.fetch(limit);
            self.stats.preg_occupancy_sum += self.renamer.in_use() as u64;
            self.stats.iq_occupancy_sum += self.iq_used as u64;
            self.stats.rob_occupancy_sum += self.rob.len() as u64;
            let idx = (self.now as usize) % RESV_RING;
            self.resv_fu[idx] = [0; 4];
            self.resv_wb[idx] = 0;
            worked += 1;
            assert!(
                worked < cycle_cap,
                "simulation wedged after {worked} worked cycles at cycle {} (fetch {}/{} rob {})",
                self.now,
                self.fetch_ptr,
                limit,
                self.rob.len()
            );
            // Idle-cycle skipping: a cycle that changed nothing would be
            // followed by identical empty cycles until the next wake-up
            // (completion event, operand-ready bound, front-queue ready
            // time, or fetch resume) — jump straight there, accumulating
            // the per-cycle stats the skipped cycles would have gathered.
            if !self.progress && !self.retry_next_cycle {
                if let Some(wake) = self.next_wake(limit) {
                    if wake > self.now + 1 {
                        self.skip_idle_to(wake, stalls_before);
                        continue;
                    }
                }
            }
            self.now += 1;
        }
        self.stats.cycles = self.now;
        self.stats.il1_accesses = self.mem.il1.accesses;
        self.stats.il1_misses = self.mem.il1.misses;
        self.stats.dl1_accesses = self.mem.dl1.accesses;
        self.stats.dl1_misses = self.mem.dl1.misses;
        self.stats.l2_accesses = self.mem.l2.accesses;
        self.stats.l2_misses = self.mem.l2.misses;
        self.stats
    }

    pub(crate) fn rob_index(&self, seq: u64) -> Option<usize> {
        // Sequence numbers are unique and increasing but NOT contiguous:
        // violation squashes pop the tail without rolling back the
        // allocator (so stale completion events can never alias a newer
        // entry). Binary-search by sequence.
        let i = self.rob.partition_point(|e| e.seq < seq);
        (i < self.rob.len() && self.rob[i].seq == seq).then_some(i)
    }

    /// The earliest future cycle at which a zero-progress machine can
    /// change state: the next completion event, the issue scan's
    /// operand-ready bound, the front-queue head's decode-ready time, or
    /// the fetch resume cycle. Waking *early* is merely a missed
    /// optimisation (the cycle re-evaluates as idle); waking late would
    /// change timing, so every state-changing trigger must be covered
    /// here or in `retry_next_cycle`.
    fn next_wake(&self, limit: usize) -> Option<u64> {
        let mut wake = self.events.next_due_after(self.now);
        let mut fold = |t: u64| wake = Some(wake.map_or(t, |w: u64| w.min(t)));
        if let Some(t) = self.wake_operands {
            fold(t);
        }
        if let Some(f) = self.frontq.front() {
            if f.ready_at > self.now {
                fold(f.ready_at);
            }
        }
        if self.fetch_blocked_on.is_none()
            && self.fetch_ptr < limit
            && self.fetch_resume_at > self.now
        {
            fold(self.fetch_resume_at);
        }
        wake
    }

    /// Advances `now` to `wake` across an idle span, accumulating the
    /// per-cycle statistics the skipped cycles would have gathered (the
    /// occupancy sums, and the dispatch stall counter the idle cycle hit,
    /// both frozen across the span because nothing changes state) and
    /// clearing the reservation-ring slots those cycles would have
    /// recycled.
    fn skip_idle_to(&mut self, wake: u64, stalls_before: [u64; 4]) {
        let skipped = wake - self.now - 1; // cycles now+1 ..= wake-1
        self.stats.preg_occupancy_sum += skipped * self.renamer.in_use() as u64;
        self.stats.iq_occupancy_sum += skipped * self.iq_used as u64;
        self.stats.rob_occupancy_sum += skipped * self.rob.len() as u64;
        self.stats.stall_pregs += skipped * (self.stats.stall_pregs - stalls_before[0]);
        self.stats.stall_rob += skipped * (self.stats.stall_rob - stalls_before[1]);
        self.stats.stall_iq += skipped * (self.stats.stall_iq - stalls_before[2]);
        self.stats.stall_lsq += skipped * (self.stats.stall_lsq - stalls_before[3]);
        if skipped >= RESV_RING as u64 {
            self.resv_fu.iter_mut().for_each(|s| *s = [0; 4]);
            self.resv_wb.iter_mut().for_each(|s| *s = 0);
        } else {
            for c in (self.now + 1)..wake {
                let idx = (c as usize) % RESV_RING;
                self.resv_fu[idx] = [0; 4];
                self.resv_wb[idx] = 0;
            }
        }
        self.now = wake;
    }
}
