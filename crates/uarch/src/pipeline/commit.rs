//! The commit stage: width-limited in-order retirement. Stores write the
//! data cache here; destination registers' previous mappings are freed;
//! handles account for every instruction they represent.

use super::decode::NO_REG;
use super::entries::{bit_get, Kind};
use super::Simulator;

impl Simulator<'_> {
    // ----------------------------------------------------------- commit --
    pub(crate) fn commit(&mut self) {
        let mut n = 0;
        while n < self.cfg.front_width {
            if self.rob.is_empty() {
                break;
            }
            let h = self.rob.head_slot();
            // Retirable strictly after its completion cycle (the cycle a
            // completion event would have become visible to commit).
            if self.rob.completed_at[h] >= self.now {
                break;
            }
            self.progress = true;
            if bit_get(&self.rob.is_store, h) {
                // The store-queue head writes the data cache at retirement.
                let s = self.sq.pop_front();
                self.mem.data(self.sq.addr[s], self.now);
                self.storesets.retire_store(self.sq.pc[s], self.sq.seq[s]);
            }
            if bit_get(&self.rob.is_load, h) {
                self.lq.pop_front();
            }
            let da = self.rob.dest_arch[h];
            if da != NO_REG {
                self.renamer.release(self.rob.dest_prev[h]);
            }
            let represents = self.rob.represents[h] as u64;
            self.stats.ops += 1;
            self.stats.insts += represents;
            if self.rob.kind[h] == Kind::Handle {
                self.stats.handles += 1;
                self.stats.handle_insts += represents;
            }
            self.rob.pop_front();
            n += 1;
        }
    }
}
