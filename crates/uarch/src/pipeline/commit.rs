//! The commit stage: width-limited in-order retirement. Stores write the
//! data cache here; destination registers' previous mappings are freed;
//! handles account for every instruction they represent.

use super::entries::Kind;
use super::Simulator;

impl Simulator<'_> {
    // ----------------------------------------------------------- commit --
    pub(crate) fn commit(&mut self) {
        let mut n = 0;
        while n < self.cfg.front_width {
            let Some(head) = self.rob.front() else { break };
            if !head.completed {
                break;
            }
            let head = self.rob.pop_front().expect("head exists");
            self.progress = true;
            if head.is_store {
                // The store-queue head writes the data cache at retirement.
                let e = self.sq.pop_front().expect("store has an SQ entry");
                self.mem.data(e.addr, self.now);
                self.storesets.retire_store(e.pc, e.seq);
            }
            if head.is_load {
                self.lq.pop_front().expect("load has an LQ entry");
            }
            if let Some((_, renamed)) = head.dest {
                self.renamer.release(renamed.prev);
            }
            self.stats.ops += 1;
            self.stats.insts += head.represents as u64;
            if head.kind == Kind::Handle {
                self.stats.handles += 1;
                self.stats.handle_insts += head.represents as u64;
            }
            n += 1;
        }
    }
}
