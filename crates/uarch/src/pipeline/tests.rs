//! Pipeline-level behavioural tests: resource limits, dependence
//! serialization, memory-boundedness, misprediction costs, and
//! monotonicity under resource reductions.

use super::*;
use mg_isa::{reg, Asm, Memory};
use mg_profile::record_trace;

/// A hot loop whose body is `body(asm)`, executed `iters` times; the
/// counter lives in r30. Loops keep the instruction cache warm, as the
/// paper's benchmarks do.
fn loop_trace(iters: i64, body: impl Fn(&mut Asm)) -> (Program, Trace) {
    let mut a = Asm::new();
    a.li(reg(30), iters);
    a.label("top");
    body(&mut a);
    a.subq(reg(30), 1, reg(30));
    a.bne(reg(30), "top");
    a.halt();
    let p = a.finish().unwrap();
    let t = record_trace(&p, &mut Memory::new(), None, 10_000_000).unwrap();
    (p, t)
}

fn run_baseline(p: &Program, t: &Trace) -> SimStats {
    Simulator::new(SimConfig::baseline(), p, t, &HandleCatalog::new()).run()
}

#[test]
fn independent_ops_reach_alu_limit() {
    // 24 independent adds per iteration across 12 rotating registers.
    let (p, t) = loop_trace(400, |a| {
        for i in 0..24 {
            let r = reg((i % 12 + 1) as u8);
            a.addq(r, 1, r);
        }
    });
    let stats = run_baseline(&p, &t);
    let ipc = stats.ipc();
    assert!(ipc > 3.0, "expected near-4 IPC, got {ipc:.2}");
    assert!(ipc <= 4.05, "cannot exceed ALU bandwidth, got {ipc:.2}");
}

#[test]
fn dependence_chain_serializes() {
    // 20 dependent adds per iteration: the r1 chain dominates.
    let (p, t) = loop_trace(300, |a| {
        for _ in 0..20 {
            a.addq(reg(1), 1, reg(1));
        }
    });
    let stats = run_baseline(&p, &t);
    let ipc = stats.ipc();
    assert!(ipc < 1.3, "serial chain is ~1 IPC, got {ipc:.2}");
    assert!(ipc > 0.8, "serial chain should sustain ~1 IPC, got {ipc:.2}");
}

#[test]
fn two_cycle_scheduler_halves_serial_throughput() {
    let (p, t) = loop_trace(300, |a| {
        for _ in 0..20 {
            a.addq(reg(1), 1, reg(1));
        }
    });
    let mut cfg = SimConfig::baseline();
    cfg.sched_loop = 2;
    let stats = Simulator::new(cfg, &p, &t, &HandleCatalog::new()).run();
    let ipc = stats.ipc();
    assert!(ipc < 0.75, "2-cycle scheduler: dependent ops every other cycle, got {ipc:.2}");
    assert!(ipc > 0.4, "got {ipc:.2}");
}

#[test]
fn width_limits_ipc() {
    let (p, t) = loop_trace(400, |a| {
        for i in 0..24 {
            let r = reg((i % 12 + 1) as u8);
            a.addq(r, 1, r);
        }
    });
    let cfg = SimConfig::baseline().with_front_width(2);
    let stats = Simulator::new(cfg, &p, &t, &HandleCatalog::new()).run();
    assert!(stats.ipc() <= 2.05, "2-wide front end caps IPC, got {}", stats.ipc());
    assert!(stats.ipc() > 1.5, "2-wide should still flow, got {}", stats.ipc());
}

#[test]
fn loads_bounded_by_load_ports() {
    // 16 independent hitting loads per iteration + 2 loop ops: the two
    // load ports bound throughput near 16/8 loads + overlap.
    let (p, t) = loop_trace(300, |a| {
        a.li(reg(2), 0x10_0000);
        for i in 0..16 {
            a.ldq(reg((i % 8 + 3) as u8), (i as i64) * 8, reg(2));
        }
    });
    let stats = run_baseline(&p, &t);
    // 19 insts per iteration, loads limited to 2/cycle => >= 8 cycles.
    let ipc = stats.ipc();
    assert!(ipc <= 19.0 / 8.0 + 0.1, "load ports cap IPC, got {ipc:.2}");
    assert!(ipc > 1.5, "independent hitting loads should flow, got {ipc:.2}");
    assert!(stats.dl1_miss_rate() < 0.05);
}

#[test]
fn pointer_chase_is_memory_bound() {
    // A dependent load chain with a 4KB stride: every load misses L1.
    let mut a = Asm::new();
    a.li(reg(1), 0x40_0000);
    a.li(reg(30), 40);
    a.label("top");
    for _ in 0..8 {
        a.ldq(reg(1), 0, reg(1));
    }
    a.subq(reg(30), 1, reg(30));
    a.bne(reg(30), "top");
    a.halt();
    let p = a.finish().unwrap();
    let mut mem = Memory::new();
    let mut addr = 0x40_0000u64;
    for _ in 0..400 {
        mem.write_u64(addr, addr + 4096);
        addr += 4096;
    }
    let t = record_trace(&p, &mut mem, None, 1_000_000).unwrap();
    let stats = run_baseline(&p, &t);
    assert!(
        stats.ipc() < 0.2,
        "serialized misses should crawl (mcf-like), got {}",
        stats.ipc()
    );
    assert!(stats.dl1_miss_rate() > 0.8);
}

#[test]
fn branch_heavy_code_pays_mispredictions() {
    // Data-dependent unpredictable branches from a simple LCG.
    let mut a = Asm::new();
    a.li(reg(1), 12345);
    a.li(reg(4), 0);
    a.li(reg(5), 400);
    a.label("top");
    a.mulq(reg(1), 1103515245, reg(1));
    a.addq(reg(1), 12345, reg(1));
    a.srl(reg(1), 16, reg(2));
    a.and(reg(2), 1, reg(2));
    a.beq(reg(2), "skip");
    a.addq(reg(4), 1, reg(4));
    a.label("skip");
    a.addq(reg(5), -1, reg(5));
    a.bne(reg(5), "top");
    a.halt();
    let p = a.finish().unwrap();
    let t = record_trace(&p, &mut Memory::new(), None, 1_000_000).unwrap();
    let stats = run_baseline(&p, &t);
    assert!(stats.mispredict_rate() > 0.05, "random branch must mispredict");
    assert!(stats.ipc() < 3.0);
}

#[test]
fn narrower_machine_is_never_faster() {
    let (p, t) = loop_trace(200, |a| {
        for i in 0..12 {
            let r = reg((i % 6 + 1) as u8);
            a.addq(r, 1, r);
            a.xor(r, 3, r);
        }
    });
    let six = run_baseline(&p, &t);
    let four = Simulator::new(
        SimConfig::baseline().with_front_width(4),
        &p,
        &t,
        &HandleCatalog::new(),
    )
    .run();
    assert!(four.cycles >= six.cycles);
}

#[test]
fn fewer_pregs_never_faster() {
    let (p, t) = loop_trace(200, |a| {
        for i in 0..16 {
            let r = reg((i % 8 + 1) as u8);
            a.addq(r, 1, r);
        }
    });
    let full = run_baseline(&p, &t);
    let small = Simulator::new(
        SimConfig::baseline().with_phys_regs(104),
        &p,
        &t,
        &HandleCatalog::new(),
    )
    .run();
    assert!(small.cycles >= full.cycles);
}

#[test]
fn rob_index_with_non_contiguous_seqs() {
    use super::decode::NO_REG;
    use super::entries::{Kind, RobPush, NO_PREG, NO_WAIT};
    // Sequence numbers stay unique and ascending but become
    // non-contiguous after a violation squash: the tail is popped while
    // the allocator keeps counting. `rob_index` must keep resolving by
    // binary search over the ring, and stale seqs must resolve to `None`.
    let mut a = Asm::new();
    a.halt();
    let p = a.finish().unwrap();
    let t = record_trace(&p, &mut Memory::new(), None, 10).unwrap();
    let entry = |seq: u64| RobPush {
        seq,
        trace_idx: 0,
        sidx: 0,
        kind: Kind::Alu,
        represents: 1,
        dest_arch: NO_REG,
        dest_preg: 0,
        dest_prev: 0,
        src0: NO_PREG,
        src1: NO_PREG,
        in_iq: false,
        issued: true,
        completed: false,
        mispredicted: false,
        pred_taken: false,
        pred_token: 0,
        wait_store: NO_WAIT,
        is_store: false,
        is_load: false,
    };
    let mut sim = Simulator::new(SimConfig::baseline(), &p, &t, &HandleCatalog::new());
    for seq in [0u64, 1, 5, 7, 9] {
        sim.rob.push(entry(seq));
    }
    sim.next_seq = 10;
    assert_eq!(sim.rob_index(0), Some(0));
    assert_eq!(sim.rob_index(1), Some(1));
    assert_eq!(sim.rob_index(5), Some(2));
    assert_eq!(sim.rob_index(7), Some(3));
    assert_eq!(sim.rob_index(9), Some(4));
    // Seqs inside the gaps (squashed before these entries were pushed)
    // must not alias a live entry.
    for stale in [2u64, 3, 4, 6, 8, 10, 42] {
        assert_eq!(sim.rob_index(stale), None, "stale seq {stale} must miss");
    }
    // A fresh squash pops the tail; the survivors still resolve.
    sim.squash_from(7, 0);
    assert_eq!(sim.rob.len(), 3);
    assert_eq!(sim.rob_index(5), Some(2));
    assert_eq!(sim.rob_index(7), None, "squashed seq must miss");
    assert_eq!(sim.rob_index(9), None, "squashed seq must miss");
}

#[test]
fn issue_scan_order_is_age_order() {
    // The bitset scan must select oldest-first within a cycle even when
    // the ROB ring has wrapped (head past the middle of the ring). Run a
    // workload long enough to wrap the 128-slot ring many times and
    // cross-check against the canonical stats of a fresh run: any
    // tie-break divergence would change cycle counts.
    let (p, t) = loop_trace(500, |a| {
        for i in 0..10 {
            let r = reg((i % 5 + 1) as u8);
            a.addq(r, 1, r);
            a.xor(r, 3, r);
        }
    });
    let s1 = run_baseline(&p, &t);
    let s2 = run_baseline(&p, &t);
    assert_eq!(s1, s2);
    assert!(s1.ipc() > 1.0, "pipelined loop must flow, got {}", s1.ipc());
}

#[test]
fn determinism() {
    let (p, t) = loop_trace(100, |a| {
        a.addq(reg(1), 1, reg(1));
    });
    let s1 = run_baseline(&p, &t);
    let s2 = run_baseline(&p, &t);
    assert_eq!(s1.cycles, s2.cycles);
    assert_eq!(s1.insts, s2.insts);
}
