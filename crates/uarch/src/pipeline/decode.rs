//! The predecode plane: per-static-instruction lanes the pipeline stages
//! read instead of re-deriving opcode class, operands, and mini-graph
//! metadata from [`mg_isa::Inst`] on every dynamic operation.
//!
//! Everything here is **configuration-independent** — a pure function of
//! the program image and its handle catalog — so one [`Predecode`] can be
//! built per image and shared (via `Arc`) across every simulation of that
//! image: the scalar path, every replica of a fused multi-config sweep,
//! and repeated runs of the same prepared workload.
//!
//! The configuration-*dependent* flattening of the MGT (`MgtLanes`)
//! lives here too: it replaces per-issue `MgSchedule` lookups (and the
//! clone the borrow checker used to force) with dense lanes indexed by
//! MGID.

use super::entries::{fu_index, Kind};
use mg_core::{FuReq, MgTable};
use mg_isa::{HandleCatalog, OpClass, Opcode, Program};

/// Sentinel for "no architectural register" in the u8 operand lanes.
pub(crate) const NO_REG: u8 = 0xFF;
/// Sentinel for "not a handle" in the MGID lane.
pub(crate) const NO_MGID: u32 = u32::MAX;

/// Control-transfer class of a static instruction, precomputed so fetch
/// prediction and completion-time resolution never re-match on opcode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Ctrl {
    /// Not a control transfer.
    None,
    /// A conditional branch (direction-predicted).
    Cond,
    /// A handle: predicts and trains through its own PC like the
    /// conditional branch it may embed (paper §4.1).
    Handle,
    /// `bsr`: unconditional call — pushes the return-address stack.
    Bsr,
    /// Any other unconditional branch (BTB only).
    OtherUncond,
    /// `ret`: predicted by the return-address stack.
    Ret,
    /// `jsr`: indirect call — pushes the RAS and consults the BTB.
    Jsr,
    /// Any other indirect jump (BTB only).
    OtherJump,
}

/// Config-independent per-static-instruction decode lanes (see module
/// docs). Indexed by static instruction index (`sidx`).
pub struct Predecode {
    pub(crate) kind: Box<[Kind]>,
    pub(crate) ctrl: Box<[Ctrl]>,
    /// Architectural destination register, or [`NO_REG`].
    pub(crate) dest: Box<[u8]>,
    /// Architectural source registers, or [`NO_REG`].
    pub(crate) src0: Box<[u8]>,
    pub(crate) src1: Box<[u8]>,
    /// MGID for handles, [`NO_MGID`] otherwise.
    pub(crate) mgid: Box<[u32]>,
    /// Instructions this op represents at commit (template length for
    /// handles, 1 otherwise).
    pub(crate) represents: Box<[u32]>,
}

impl Predecode {
    /// Builds the predecode lanes for `prog` against the mini-graph
    /// `catalog` its handles refer to (empty for baseline images).
    ///
    /// # Panics
    ///
    /// Panics if a handle refers to an MGID absent from the catalog (the
    /// image and catalog must agree, exactly as at simulation time).
    pub fn new(prog: &Program, catalog: &HandleCatalog) -> Predecode {
        let n = prog.insts.len();
        let mut kind = Vec::with_capacity(n);
        let mut ctrl = Vec::with_capacity(n);
        let mut dest = Vec::with_capacity(n);
        let mut src0 = Vec::with_capacity(n);
        let mut src1 = Vec::with_capacity(n);
        let mut mgid = Vec::with_capacity(n);
        let mut represents = Vec::with_capacity(n);
        for inst in &prog.insts {
            let class = inst.op.class();
            kind.push(match class {
                OpClass::IntAlu => Kind::Alu,
                OpClass::IntMul => Kind::Mul,
                OpClass::Load => Kind::Load,
                OpClass::Store => Kind::Store,
                OpClass::CondBranch | OpClass::UncondBranch | OpClass::Jump => Kind::Control,
                OpClass::Handle => Kind::Handle,
                OpClass::Nop | OpClass::Pad | OpClass::Halt => Kind::Direct,
            });
            ctrl.push(match class {
                OpClass::CondBranch => Ctrl::Cond,
                OpClass::Handle => Ctrl::Handle,
                OpClass::UncondBranch => {
                    if inst.op == Opcode::Bsr {
                        Ctrl::Bsr
                    } else {
                        Ctrl::OtherUncond
                    }
                }
                OpClass::Jump => match inst.op {
                    Opcode::Ret => Ctrl::Ret,
                    Opcode::Jsr => Ctrl::Jsr,
                    _ => Ctrl::OtherJump,
                },
                _ => Ctrl::None,
            });
            dest.push(inst.dest_reg().map_or(NO_REG, |r| r.index() as u8));
            let srcs = inst.src_regs();
            src0.push(srcs[0].map_or(NO_REG, |r| r.index() as u8));
            src1.push(srcs[1].map_or(NO_REG, |r| r.index() as u8));
            let id = inst.mgid();
            mgid.push(id.unwrap_or(NO_MGID));
            represents.push(match id {
                Some(id) => {
                    catalog.get(id).expect("handle refers to a packed MGT entry").ops.len()
                        as u32
                }
                None => 1,
            });
        }
        Predecode {
            kind: kind.into(),
            ctrl: ctrl.into(),
            dest: dest.into(),
            src0: src0.into(),
            src1: src1.into(),
            mgid: mgid.into(),
            represents: represents.into(),
        }
    }
}

/// Configuration-dependent MGT lanes: the [`MgTable`] flattened into
/// dense per-MGID arrays so the issue and execute stages index a handful
/// of scalars instead of chasing `MgSchedule` vectors (and cloning them
/// to appease borrows).
pub(crate) struct MgtLanes {
    /// `FU0` as a `[ap, alu, load, store]` reservation index.
    pub(crate) fu0: Box<[u8]>,
    /// Output latency (`out_latency.unwrap_or(total_latency)`).
    pub(crate) out_lat: Box<[u32]>,
    /// Total execution latency.
    pub(crate) total_lat: Box<[u32]>,
    /// Whether the whole graph runs on an ALU pipeline.
    pub(crate) on_alu_pipe: Box<[bool]>,
    /// Whether a cache-miss extension of the total latency also extends
    /// the output latency (`out_latency` absent or equal to the total).
    pub(crate) out_tracks_total: Box<[bool]>,
    /// Scheduled cycle of the first load slot, or `u32::MAX` if the
    /// graph has no load.
    pub(crate) load_slot_cycle: Box<[u32]>,
    /// Whether that load slot is the graph's terminal constituent.
    pub(crate) load_terminal: Box<[bool]>,
    /// Per-MGID `[start, end)` ranges into `fubmp`.
    pub(crate) fubmp_start: Box<[u32]>,
    /// Flattened `FUBMP` reservations `(cycle offset, fu index)`.
    pub(crate) fubmp: Box<[(u32, u8)]>,
}

impl MgtLanes {
    /// Flattens `table` (already packed for one machine configuration).
    pub(crate) fn new(table: &MgTable) -> MgtLanes {
        let n = table.len();
        let mut fu0 = Vec::with_capacity(n);
        let mut out_lat = Vec::with_capacity(n);
        let mut total_lat = Vec::with_capacity(n);
        let mut on_alu_pipe = Vec::with_capacity(n);
        let mut out_tracks_total = Vec::with_capacity(n);
        let mut load_slot_cycle = Vec::with_capacity(n);
        let mut load_terminal = Vec::with_capacity(n);
        let mut fubmp_start = Vec::with_capacity(n + 1);
        let mut fubmp = Vec::new();
        fubmp_start.push(0u32);
        for mgid in 0..n as u32 {
            let s = table.get(mgid).expect("dense MGT");
            fu0.push(fu_index(s.fu0) as u8);
            out_lat.push(s.out_latency.unwrap_or(s.total_latency));
            total_lat.push(s.total_latency);
            on_alu_pipe.push(s.on_alu_pipe);
            out_tracks_total
                .push(s.out_latency.is_none() || s.out_latency == Some(s.total_latency));
            let load = s.slots.iter().position(|x| x.fu == Some(FuReq::LoadPort));
            load_slot_cycle.push(load.map_or(u32::MAX, |i| s.slots[i].cycle));
            load_terminal.push(load.is_some_and(|i| i + 1 == s.slots.len()));
            fubmp.extend(s.fubmp().map(|(c, f)| (c, fu_index(f) as u8)));
            fubmp_start.push(fubmp.len() as u32);
        }
        MgtLanes {
            fu0: fu0.into(),
            out_lat: out_lat.into(),
            total_lat: total_lat.into(),
            on_alu_pipe: on_alu_pipe.into(),
            out_tracks_total: out_tracks_total.into(),
            load_slot_cycle: load_slot_cycle.into(),
            load_terminal: load_terminal.into(),
            fubmp_start: fubmp_start.into(),
            fubmp: fubmp.into(),
        }
    }

    /// The flattened `FUBMP` reservations of `mgid`.
    #[inline]
    pub(crate) fn fubmp_of(&self, mgid: u32) -> &[(u32, u8)] {
        let lo = self.fubmp_start[mgid as usize] as usize;
        let hi = self.fubmp_start[mgid as usize + 1] as usize;
        &self.fubmp[lo..hi]
    }
}
