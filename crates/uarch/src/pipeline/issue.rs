//! The issue stage: operand readiness, store-set ordering, functional-unit
//! and write-port admission, and the sliding-window scheduler that
//! reserves an integer-memory handle's downstream functional units at
//! issue (`FU0` + `FUBMP` from the MGHT, paper §4.3).
//!
//! Candidates are found by scanning the ROB's `poll & unissued` bitsets
//! with masked trailing-zeros iteration in ring order from the head —
//! which is age (sequence) order, preserving the FIFO-per-cycle select
//! semantics of the previous entry-walking scan exactly.
//!
//! # Wake-driven polling
//!
//! An entry whose sources are not ready cannot issue this cycle, and
//! `preg_ready` times only ever move from "unknown" (`u64::MAX`, set at
//! rename) to one fixed future cycle (set at the producer's issue) — so
//! instead of re-scanning stalled entries every cycle, the scan *parks*
//! them: it clears their `poll` bit and arranges exactly one wake-up at
//! the first cycle the entry could possibly issue. If the blocking
//! ready-time is known, the wake is a calendar entry on
//! `Simulator::wakes`; if the producer has not issued yet, the entry
//! joins the producer's destination-register waiter list and the
//! producer's own issue schedules the calendar wake. Parking is purely a
//! scan filter — re-delivered entries re-validate readiness from
//! scratch, and entries blocked by anything *other* than operands
//! (store-set ordering, FU or write-port availability) stay polled, so
//! selection order and timing are bit-identical to the always-scan core.

use super::decode::Ctrl;
use super::entries::{bit_clear, bit_get, bit_set, Kind, NO_PREG, NO_WAIT};
use super::{Simulator, RESV_RING};
use crate::config::MgSupport;

impl Simulator<'_> {
    /// Delivers this cycle's operand-readiness wakes: re-sets the `poll`
    /// bit of every parked entry whose sources may now be ready. Runs
    /// before [`Simulator::issue`] each cycle. Stale payloads (squashed
    /// or already-issued entries) are dropped here.
    pub(crate) fn deliver_wakes(&mut self) {
        if !self.wakes.needs_harvest(self.now) {
            return;
        }
        let due = self.wakes.take_due(self.now);
        for &payload in &due {
            let slot = (payload & 0xFFFF) as usize;
            let seq = payload >> 16;
            if self.rob.is_live(slot, seq) && bit_get(&self.rob.unissued, slot) {
                bit_set(&mut self.rob.poll, slot);
            }
        }
        self.wakes.recycle(due);
    }

    // ------------------------------------------------------------ issue --
    pub(crate) fn issue(&mut self) {
        let mut issued = 0u32;
        let mut used = [0u16; 4]; // ap, alu, load, store (this cycle)
        let mut intmem_handles = 0u32;
        let plain_alus = self.cfg.plain_alus() as u16;
        let pipes = self.cfg.pipes() as u16;
        // Per-FU capacity, indexed like `used` / `resv_fu`.
        let caps: [u16; 4] =
            [pipes, plain_alus, self.cfg.load_ports as u16, self.cfg.store_ports as u16];

        // Ring-order scan: the phase [head, cap) then the wrapped phase
        // [0, head). Bits outside the live span are always clear (pops
        // clear them), so scanning whole phases is safe; a squash during
        // the scan clears tail bits, so each candidate re-validates its
        // bit before use (dispatch runs after issue, so a cleared slot
        // cannot be repopulated within this scan).
        let head = self.rob.head_slot();
        let cap = self.rob.capacity();
        'scan: for (start, end) in [(head, cap), (0, head)] {
            if start >= end {
                continue;
            }
            let first_w = start >> 6;
            let last_w = (end - 1) >> 6;
            for w in first_w..=last_w {
                let mut bits = self.rob.unissued[w] & self.rob.poll[w];
                if w == first_w {
                    bits &= !0u64 << (start & 63);
                }
                if w == last_w && (end & 63) != 0 {
                    bits &= (1u64 << (end & 63)) - 1;
                }
                while bits != 0 {
                    let slot = (w << 6) + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if issued >= self.cfg.issue_width {
                        break 'scan;
                    }
                    // Re-validate: a violation squash triggered by an
                    // earlier candidate may have popped this slot.
                    if !bit_get(&self.rob.unissued, slot) {
                        continue;
                    }
                    issued += self.try_issue_slot(slot, &mut used, &caps, &mut intmem_handles);
                }
            }
        }
    }

    /// Attempts to issue the unissued scheduler entry at `slot`; returns
    /// how many issue slots the attempt consumed (1 on issue, 1 for an
    /// integer-memory handle's lost slot, 0 otherwise).
    #[inline]
    fn try_issue_slot(
        &mut self,
        slot: usize,
        used: &mut [u16; 4],
        caps: &[u16; 4],
        intmem_handles: &mut u32,
    ) -> u32 {
        #[cfg(feature = "stagetime")]
        macro_rules! count {
            ($i:expr) => {
                super::stagetime::add($i, 1)
            };
        }
        #[cfg(not(feature = "stagetime"))]
        macro_rules! count {
            ($i:expr) => {};
        }
        count!(8);
        // Operand readiness (including the scheduler-loop latency
        // already folded into preg_ready at the producer's issue).
        let srcs = [self.rob.src0[slot], self.rob.src1[slot]];
        let mut latest: u64 = 0;
        for s in srcs {
            if s != NO_PREG {
                latest = latest.max(self.preg_ready[s as usize]);
            }
        }
        if latest > self.now {
            // Park the entry: stop polling it and arrange exactly one
            // wake at the first cycle it could issue. `u64::MAX` marks a
            // producer that has not itself issued — its ready time is
            // unknown, so wait on the producer's destination register
            // instead; the producer's issue converts the registration
            // into a calendar wake.
            let seq = self.rob.seq[slot];
            debug_assert!(seq < 1 << 48, "sequence number overflows wake payload");
            let packed = (seq << 16) | slot as u64;
            bit_clear(&mut self.rob.poll, slot);
            if latest != u64::MAX {
                self.wakes.schedule(self.now, latest, packed);
            } else {
                let p = srcs
                    .into_iter()
                    .find(|&s| s != NO_PREG && self.preg_ready[s as usize] == u64::MAX)
                    .expect("a MAX bound implies a MAX source");
                let rob = &self.rob;
                let list = &mut self.preg_waiters[p as usize];
                if list.len() == list.capacity() {
                    // Squashed waiters linger until their producer's
                    // register is drained; compact them away in place so
                    // the list never outgrows its pre-sized capacity
                    // (live waiters are distinct unissued entries, at
                    // most `iq_size` of them).
                    list.retain(|&w| rob.is_live((w & 0xFFFF) as usize, w >> 16));
                }
                debug_assert!(list.len() < list.capacity(), "waiter list overflow");
                list.push(packed);
            }
            count!(9);
            return 0;
        }
        // Store-set ordering: loads wait for their predicted store. The
        // packed (seq, slot) link validates in O(1); a dead link means
        // the store retired (a squashed store takes the load with it).
        let ws = self.rob.wait_store[slot];
        if ws != NO_WAIT {
            let wslot = (ws & 0xFFFF) as usize;
            let wseq = ws >> 16;
            if self.rob.is_live(wslot, wseq) && bit_get(&self.rob.unissued, wslot) {
                count!(10);
                return 0;
            }
        }

        let kind = self.rob.kind[slot];
        let seq = self.rob.seq[slot];
        let ring = (self.now as usize) % RESV_RING;
        // Functional unit + write-port admission for this cycle.
        let admitted = match kind {
            Kind::Alu | Kind::Mul | Kind::Control => {
                // Prefer a plain ALU; singletons may use an AP entry
                // with no penalty.
                if used[1] < caps[1] {
                    used[1] += 1;
                    true
                } else if used[0] < caps[0] {
                    used[0] += 1;
                    true
                } else {
                    false
                }
            }
            Kind::Load => {
                if used[2] + self.resv_fu[ring][2] < caps[2] {
                    used[2] += 1;
                    true
                } else {
                    false
                }
            }
            Kind::Store => {
                if used[3] + self.resv_fu[ring][3] < caps[3] {
                    used[3] += 1;
                    true
                } else {
                    false
                }
            }
            Kind::Handle => {
                let mgid = self.pd.mgid[self.rob.sidx[slot] as usize] as usize;
                if self.mg.on_alu_pipe[mgid] {
                    if used[0] < caps[0] {
                        used[0] += 1;
                        true
                    } else {
                        false
                    }
                } else {
                    // Integer-memory handle: sliding-window scheduler,
                    // at most one per cycle; all downstream FUs must be
                    // reservable or the issue slot is lost (§4.3).
                    assert_eq!(
                        self.cfg.mg,
                        MgSupport::IntegerMemory,
                        "integer-memory handle on a machine without a sliding-window scheduler"
                    );
                    if *intmem_handles >= 1 {
                        false
                    } else {
                        let fu0 = self.mg.fu0[mgid] as usize;
                        let fu0_ok = used[fu0] + self.resv_fu[ring][fu0] < caps[fu0];
                        let window_ok = self.mg.fubmp_of(mgid as u32).iter().all(|&(c, f)| {
                            let r = ((self.now + c as u64) as usize) % RESV_RING;
                            self.resv_fu[r][f as usize] < caps[f as usize]
                        });
                        if fu0_ok && window_ok {
                            used[fu0] += 1;
                            for &(c, f) in self.mg.fubmp_of(mgid as u32) {
                                let r = ((self.now + c as u64) as usize) % RESV_RING;
                                self.resv_fu[r][f as usize] += 1;
                            }
                            *intmem_handles += 1;
                            true
                        } else {
                            // The slot used to attempt issue is lost.
                            self.retry_next_cycle = true;
                            return 1;
                        }
                    }
                }
            }
            Kind::Direct => true,
        };
        if !admitted {
            // Denied by this cycle's FU availability or reservation
            // window — both functions of `now`, so the next cycle must
            // actually be simulated (no idle skip).
            self.retry_next_cycle = true;
            count!(11);
            return 0;
        }

        // Write-port reservation at the (nominal) output cycle. The
        // nominal latency assumes a cache hit; a miss writes back later
        // through one of the ports freed by the stall it causes.
        let nominal = self.nominal_out_latency(slot);
        let has_dest = self.rob.dest_arch[slot] != super::decode::NO_REG;
        if has_dest {
            let r = ((self.now + nominal as u64) as usize) % RESV_RING;
            if self.resv_wb[r] >= self.cfg.prf_write_ports as u16 {
                // Reverting FU bookkeeping is unnecessary: counters are
                // per-attempt upper bounds within one cycle; skipping
                // here only under-uses the FU this cycle.
                self.retry_next_cycle = true;
                count!(12);
                return 0;
            }
            self.resv_wb[r] += 1;
        }
        // Committed to issuing: perform the (single) cache access and
        // compute actual latencies.
        let (out_lat, total_lat) = self.latencies(slot);

        // Issue!
        self.progress = true;
        bit_clear(&mut self.rob.unissued, slot);
        bit_clear(&mut self.rob.poll, slot);
        if kind != Kind::Handle {
            // Handles keep their scheduler entry until the terminal op.
            bit_clear(&mut self.rob.in_iq, slot);
            self.iq_used -= 1;
        }
        if has_dest {
            let dest = self.rob.dest_preg[slot] as usize;
            let ready = self.now + (out_lat.max(self.cfg.sched_loop)) as u64;
            self.preg_ready[dest] = ready;
            // Convert consumers waiting on this register into calendar
            // wakes at the ready cycle (stale waiters — squashed along
            // with a squashed previous producer — are filtered at
            // delivery, so the drain itself needs no validation).
            let mut waiters = std::mem::take(&mut self.preg_waiters[dest]);
            for &w in &waiters {
                self.wakes.schedule(self.now, ready, w);
            }
            waiters.clear();
            self.preg_waiters[dest] = waiters;
        }
        self.rob.completed_at[slot] = self.now + total_lat as u64;
        // Completion *events* only for operations whose completion does
        // work: control resolution (anything with a static control
        // classification) or a handle's scheduler-entry release. Plain
        // operations become retirable passively through `completed_at`.
        if kind == Kind::Handle || self.pd.ctrl[self.rob.sidx[slot] as usize] != Ctrl::None {
            debug_assert!(seq < 1 << 48, "sequence number overflows event payload");
            self.events.schedule(
                self.now,
                self.now + total_lat as u64,
                (seq << 16) | slot as u64,
            );
        } else {
            debug_assert!(
                self.trace.op(self.rob.trace_idx[slot] as usize).br.is_none(),
                "a branch-recording op must have a completion event"
            );
        }

        // Memory side effects (agen/dcache) and violation checks (may
        // squash younger entries; this slot is always older than any
        // victim, so it survives).
        self.issue_memory_effects(slot);
        count!(13);
        1
    }

    /// Nominal (cache-hit) output latency used for write-port reservation,
    /// computed without touching the memory hierarchy.
    pub(crate) fn nominal_out_latency(&self, slot: usize) -> u32 {
        match self.rob.kind[slot] {
            Kind::Alu | Kind::Control | Kind::Direct | Kind::Store => 1,
            Kind::Mul => 3,
            Kind::Load => self.cfg.load_hit_latency(),
            Kind::Handle => {
                let mgid = self.pd.mgid[self.rob.sidx[slot] as usize] as usize;
                self.mg.out_lat[mgid]
            }
        }
    }
}
