//! The issue stage: operand readiness, store-set ordering, functional-unit
//! and write-port admission, and the sliding-window scheduler that
//! reserves an integer-memory handle's downstream functional units at
//! issue (`FU0` + `FUBMP` from the MGHT, paper §4.3).

use super::entries::{fu_index, Kind};
use super::{Simulator, RESV_RING};
use crate::config::{MgSupport, SimConfig};
use mg_core::FuReq;

impl Simulator<'_> {
    // ------------------------------------------------------------ issue --
    pub(crate) fn issue(&mut self) {
        let mut issued = 0u32;
        let mut used = [0u16; 4]; // ap, alu, load, store (this cycle)
        let mut intmem_handles = 0u32;
        let plain_alus = self.cfg.plain_alus() as u16;
        let pipes = self.cfg.pipes() as u16;
        let cap = |f: usize, cfg: &SimConfig| -> u16 {
            match f {
                0 => cfg.pipes() as u16,
                1 => cfg.plain_alus() as u16,
                2 => cfg.load_ports as u16,
                3 => cfg.store_ports as u16,
                _ => 0,
            }
        };

        // `issue_hint` is a lower bound on unissued sequence numbers:
        // everything older is already issued (entries only ever go
        // unissued → issued, and newcomers get fresh, larger seqs), so
        // the scan starts past the issued ROB prefix. `iq_unissued`
        // bounds the other end: once that many candidates have been
        // seen, the issued/completed tail cannot match and the scan
        // stops. Neither cut changes which entries are visited.
        let mut unseen = self.iq_unissued;
        let hint = self.issue_hint;
        let mut new_hint = None;
        let mut idx = self.rob.partition_point(|e| e.seq < hint);
        while idx < self.rob.len() && issued < self.cfg.issue_width && unseen > 0 {
            let e = &self.rob[idx];
            if !e.in_iq || e.issued {
                idx += 1;
                continue;
            }
            unseen -= 1;
            if new_hint.is_none() {
                new_hint = Some(e.seq);
            }
            // Operand readiness (including the scheduler-loop latency
            // already folded into preg_ready at the producer's issue).
            let ready =
                e.srcs.iter().flatten().all(|&p| self.preg_ready[p as usize] <= self.now);
            if !ready {
                // Idle-skip wake bound: the cycle every source is ready.
                // `u64::MAX` marks a producer that has not even issued;
                // its own issue is machine progress, so it needs no bound.
                let t = e
                    .srcs
                    .iter()
                    .flatten()
                    .map(|&p| self.preg_ready[p as usize])
                    .max()
                    .unwrap_or(0);
                if t != u64::MAX {
                    self.wake_operands = Some(self.wake_operands.map_or(t, |w: u64| w.min(t)));
                }
                idx += 1;
                continue;
            }
            // Store-set ordering: loads wait for their predicted store.
            if let Some(ws) = e.wait_store {
                let blocked = match self.rob_index(ws) {
                    Some(si) => !self.rob[si].issued,
                    None => false, // already retired
                };
                if blocked {
                    idx += 1;
                    continue;
                }
            }

            let kind = e.kind;
            let seq = e.seq;
            // Functional unit + write-port admission for this cycle.
            let admitted = match kind {
                Kind::Alu | Kind::Mul | Kind::Control => {
                    // Prefer a plain ALU; singletons may use an AP entry
                    // with no penalty.
                    if used[1] < plain_alus {
                        used[1] += 1;
                        true
                    } else if used[0] < pipes {
                        used[0] += 1;
                        true
                    } else {
                        false
                    }
                }
                Kind::Load => {
                    let i = fu_index(FuReq::LoadPort);
                    let ring = (self.now as usize) % RESV_RING;
                    if used[i] + self.resv_fu[ring][i] < cap(i, &self.cfg) {
                        used[i] += 1;
                        true
                    } else {
                        false
                    }
                }
                Kind::Store => {
                    let i = fu_index(FuReq::StorePort);
                    let ring = (self.now as usize) % RESV_RING;
                    if used[i] + self.resv_fu[ring][i] < cap(i, &self.cfg) {
                        used[i] += 1;
                        true
                    } else {
                        false
                    }
                }
                Kind::Handle => {
                    let inst = &self.prog.insts[e.sidx as usize];
                    let mgid = inst.mgid().expect("handle has MGID");
                    let sched = self.mgt.get(mgid).expect("MGT entry exists").clone();
                    if sched.on_alu_pipe {
                        if used[0] < pipes {
                            used[0] += 1;
                            true
                        } else {
                            false
                        }
                    } else {
                        // Integer-memory handle: sliding-window scheduler,
                        // at most one per cycle; all downstream FUs must be
                        // reservable or the issue slot is lost (§4.3).
                        assert_eq!(
                            self.cfg.mg,
                            MgSupport::IntegerMemory,
                            "integer-memory handle on a machine without a sliding-window scheduler"
                        );
                        if intmem_handles >= 1 {
                            false
                        } else {
                            let fu0 = fu_index(sched.fu0);
                            let ring = (self.now as usize) % RESV_RING;
                            let fu0_ok =
                                used[fu0] + self.resv_fu[ring][fu0] < cap(fu0, &self.cfg);
                            let window_ok = sched.fubmp().all(|(c, f)| {
                                let r = ((self.now + c as u64) as usize) % RESV_RING;
                                self.resv_fu[r][fu_index(f)] < cap(fu_index(f), &self.cfg)
                            });
                            if fu0_ok && window_ok {
                                used[fu0] += 1;
                                for (c, f) in sched.fubmp() {
                                    let r = ((self.now + c as u64) as usize) % RESV_RING;
                                    self.resv_fu[r][fu_index(f)] += 1;
                                }
                                intmem_handles += 1;
                                true
                            } else {
                                // The slot used to attempt issue is lost.
                                issued += 1;
                                false
                            }
                        }
                    }
                }
                Kind::Direct => true,
            };
            if !admitted {
                // Denied by this cycle's FU availability or reservation
                // window — both functions of `now`, so the next cycle must
                // actually be simulated (no idle skip).
                self.retry_next_cycle = true;
                idx += 1;
                continue;
            }

            // Write-port reservation at the (nominal) output cycle. The
            // nominal latency assumes a cache hit; a miss writes back later
            // through one of the ports freed by the stall it causes.
            let nominal = self.nominal_out_latency(idx);
            if self.rob[idx].dest.is_some() {
                let r = ((self.now + nominal as u64) as usize) % RESV_RING;
                if self.resv_wb[r] >= self.cfg.prf_write_ports as u16 {
                    // Reverting FU bookkeeping is unnecessary: counters are
                    // per-attempt upper bounds within one cycle; skipping
                    // here only under-uses the FU this cycle.
                    self.retry_next_cycle = true;
                    idx += 1;
                    continue;
                }
                self.resv_wb[r] += 1;
            }
            // Committed to issuing: perform the (single) cache access and
            // compute actual latencies.
            let (out_lat, total_lat) = self.latencies(idx);

            // Issue!
            self.progress = true;
            if new_hint == Some(seq) {
                new_hint = None; // issued after all; hint may advance past
            }
            let e = &mut self.rob[idx];
            e.issued = true;
            self.iq_unissued -= 1;
            if e.kind != Kind::Handle {
                // Handles keep their scheduler entry until the terminal op.
                e.in_iq = false;
                self.iq_used -= 1;
            }
            if let Some((_, renamed)) = e.dest {
                self.preg_ready[renamed.preg as usize] =
                    self.now + (out_lat.max(self.cfg.sched_loop)) as u64;
            }
            self.events.schedule(self.now, self.now + total_lat as u64, seq);
            issued += 1;

            // Memory side effects (agen/dcache) and violation checks.
            self.issue_memory_effects(idx);
            // Re-check: issue_memory_effects may squash younger entries
            // (memory-ordering violation found by a store) — in that case
            // `idx` may now be past the end.
            idx += 1;
            if idx > self.rob.len() {
                break;
            }
        }
        // Next scan's lower bound: the first entry that stayed unissued,
        // else the first unexamined one, else everything issued so far.
        self.issue_hint = match new_hint {
            Some(s) => s,
            None if idx < self.rob.len() => self.rob[idx].seq,
            None => self.next_seq,
        };
    }

    /// Nominal (cache-hit) output latency used for write-port reservation,
    /// computed without touching the memory hierarchy.
    pub(crate) fn nominal_out_latency(&self, idx: usize) -> u32 {
        let e = &self.rob[idx];
        match e.kind {
            Kind::Alu | Kind::Control | Kind::Direct | Kind::Store => 1,
            Kind::Mul => 3,
            Kind::Load => self.cfg.load_hit_latency(),
            Kind::Handle => {
                let inst = &self.prog.insts[e.sidx as usize];
                let mgid = inst.mgid().expect("handle has MGID");
                let sched = self.mgt.get(mgid).expect("MGT entry exists");
                sched.out_latency.unwrap_or(sched.total_latency)
            }
        }
    }
}
