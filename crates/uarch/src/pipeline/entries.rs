//! In-flight pipeline structures shared by the stage modules: front-end
//! queue entries, reorder-buffer entries, and load/store-queue entries.

use crate::rename::{PReg, RenamedDest};
use mg_core::FuReq;
use mg_isa::Reg;

/// The functional-unit class an operation occupies at issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Kind {
    Alu,
    Mul,
    Load,
    Store,
    Control,
    Handle,
    Direct, // nop/halt: no execution
}

/// A fetched operation waiting in the front-end queue for dispatch.
#[derive(Clone, Debug)]
pub(crate) struct FrontOp {
    pub(crate) trace_idx: usize,
    pub(crate) ready_at: u64,
    pub(crate) mispredicted: bool,
    pub(crate) pred_taken: bool,
    pub(crate) pred_token: u32,
}

/// A renamed, in-flight operation in the reorder buffer.
#[derive(Clone, Debug)]
pub(crate) struct RobEntry {
    pub(crate) seq: u64,
    pub(crate) trace_idx: usize,
    pub(crate) sidx: u32,
    pub(crate) kind: Kind,
    pub(crate) represents: u32,
    pub(crate) dest: Option<(Reg, RenamedDest)>,
    pub(crate) srcs: [Option<PReg>; 2],
    pub(crate) in_iq: bool,
    pub(crate) issued: bool,
    pub(crate) completed: bool,
    pub(crate) mispredicted: bool,
    pub(crate) pred_taken: bool,
    pub(crate) pred_token: u32,
    pub(crate) wait_store: Option<u64>,
    pub(crate) is_store: bool,
    pub(crate) is_load: bool,
}

/// A load-queue entry (address filled at execution).
#[derive(Clone, Copy, Debug)]
pub(crate) struct LqEntry {
    pub(crate) seq: u64,
    pub(crate) pc: u64,
    pub(crate) addr: u64,
    pub(crate) width: u8,
    pub(crate) executed: bool,
    pub(crate) trace_idx: usize,
}

/// A store-queue entry (address filled at execution; data written at
/// retirement).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SqEntry {
    pub(crate) seq: u64,
    pub(crate) pc: u64,
    pub(crate) addr: u64,
    pub(crate) width: u8,
    pub(crate) executed: bool,
}

/// Index of a functional-unit requirement in the `[ap, alu, load, store]`
/// reservation counters.
pub(crate) fn fu_index(f: FuReq) -> usize {
    match f {
        FuReq::AluPipeEntry => 0,
        FuReq::Alu => 1,
        FuReq::LoadPort => 2,
        FuReq::StorePort => 3,
    }
}

/// Whether two byte ranges `[a1, a1+w1)` and `[a2, a2+w2)` overlap.
pub(crate) fn overlap(a1: u64, w1: u8, a2: u64, w2: u8) -> bool {
    a1 < a2 + w2 as u64 && a2 < a1 + w1 as u64
}
