//! Data-oriented in-flight pipeline state shared by the stage modules:
//! the struct-of-arrays reorder buffer, front-end queue, and load/store
//! queues, plus the bitset helpers the stages scan them with.
//!
//! Every structure here is a fixed-capacity power-of-two ring
//! (`head`/`len`/`mask`) over dense per-field lanes, allocated once at
//! simulator construction: pushing and popping move indices and flip
//! bits, never the heap. Boolean per-entry state lives in `u64` bitset
//! words indexed by **physical slot**, so the issue stage finds
//! candidates with masked trailing-zeros scans instead of walking entry
//! structs, and the idle-cycle-skip machinery inherited the same trick
//! in the event wheel's occupancy words.
//!
//! Ring-order-from-head equals age order (sequence order): entries are
//! pushed at the tail in dispatch order and only ever leave from the
//! head (commit) or the tail (squash), so a two-phase slot scan —
//! `[head, cap)` then `[0, head)` — visits live entries oldest-first.

use mg_core::FuReq;

/// The functional-unit class an operation occupies at issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Kind {
    Alu,
    Mul,
    Load,
    Store,
    Control,
    Handle,
    Direct, // nop/halt: no execution
}

/// Sentinel for "no physical register" in the u16 source lanes.
pub(crate) const NO_PREG: u16 = u16::MAX;
/// Sentinel for "no predicted store" in the packed wait-store lane.
pub(crate) const NO_WAIT: u64 = u64::MAX;

/// Reads bit `i` of a bitset.
#[inline(always)]
pub(crate) fn bit_get(words: &[u64], i: usize) -> bool {
    words[i >> 6] & (1u64 << (i & 63)) != 0
}

/// Sets bit `i` of a bitset.
#[inline(always)]
pub(crate) fn bit_set(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1u64 << (i & 63);
}

/// Clears bit `i` of a bitset.
#[inline(always)]
pub(crate) fn bit_clear(words: &mut [u64], i: usize) {
    words[i >> 6] &= !(1u64 << (i & 63));
}

/// Everything dispatch knows about one renamed operation, handed to
/// [`Rob::push`] in one piece so the lane writes stay together.
pub(crate) struct RobPush {
    pub(crate) seq: u64,
    pub(crate) trace_idx: u32,
    pub(crate) sidx: u32,
    pub(crate) kind: Kind,
    pub(crate) represents: u32,
    /// Architectural destination register, or `decode::NO_REG`.
    pub(crate) dest_arch: u8,
    /// Newly allocated physical destination (meaningful iff `dest_arch`
    /// is a register).
    pub(crate) dest_preg: u16,
    /// The overwritten previous mapping (freed at commit).
    pub(crate) dest_prev: u16,
    pub(crate) src0: u16,
    pub(crate) src1: u16,
    pub(crate) in_iq: bool,
    pub(crate) issued: bool,
    pub(crate) completed: bool,
    pub(crate) mispredicted: bool,
    pub(crate) pred_taken: bool,
    pub(crate) pred_token: u32,
    /// Packed `(store seq << 16) | store rob slot`, or [`NO_WAIT`].
    pub(crate) wait_store: u64,
    pub(crate) is_load: bool,
    pub(crate) is_store: bool,
}

/// The struct-of-arrays reorder buffer (which doubles as the issue
/// queue's candidate store: scheduler membership is the `in_iq` bit).
///
/// Slots are physical ring positions; they are stable for an entry's
/// whole lifetime, which is what lets completion events and store-set
/// dependences carry `(seq, slot)` pairs and validate liveness in O(1)
/// with [`Rob::is_live`] instead of searching.
pub(crate) struct Rob {
    cap: usize,
    mask: usize,
    head: usize,
    len: usize,
    // Value lanes, indexed by physical slot.
    pub(crate) seq: Box<[u64]>,
    pub(crate) trace_idx: Box<[u32]>,
    pub(crate) sidx: Box<[u32]>,
    pub(crate) kind: Box<[Kind]>,
    pub(crate) represents: Box<[u32]>,
    pub(crate) dest_arch: Box<[u8]>,
    pub(crate) dest_preg: Box<[u16]>,
    pub(crate) dest_prev: Box<[u16]>,
    pub(crate) src0: Box<[u16]>,
    pub(crate) src1: Box<[u16]>,
    pub(crate) pred_token: Box<[u32]>,
    pub(crate) wait_store: Box<[u64]>,
    /// Cycle the entry's result is architecturally complete: commit may
    /// retire it from any cycle *strictly after* this one — matching the
    /// old completion-bit visibility, where the event at `issue +
    /// total_lat` landed after commit had already run that cycle.
    /// `u64::MAX` until issue (dispatch-completed ops push `0`). This
    /// lane is what lets most completion *events* be elided: only
    /// operations whose completion does work beyond "become retirable"
    /// (control resolution, a handle's scheduler-entry release) still
    /// schedule one.
    pub(crate) completed_at: Box<[u64]>,
    // Flag bitsets, one bit per physical slot. `unissued` is set iff the
    // entry is in the scheduler and not yet issued (pop clears every
    // flag, so a set bit implies a live entry). The issue stage scans
    // `poll & unissued`: `poll` is cleared while an entry is known to be
    // operand-blocked (a wake event or producer waiter-list entry will
    // re-set it), so stalled entries cost nothing per cycle.
    pub(crate) unissued: Box<[u64]>,
    pub(crate) poll: Box<[u64]>,
    pub(crate) in_iq: Box<[u64]>,
    pub(crate) mispredicted: Box<[u64]>,
    pub(crate) pred_taken: Box<[u64]>,
    pub(crate) is_load: Box<[u64]>,
    pub(crate) is_store: Box<[u64]>,
}

impl Rob {
    /// A ROB holding up to `capacity` entries (rounded up to a power of
    /// two for ring arithmetic; occupancy limits stay the caller's job).
    pub(crate) fn new(capacity: usize) -> Rob {
        let cap = capacity.next_power_of_two().max(2);
        // Slots are packed into 16 payload bits alongside sequence
        // numbers (events, wait-store links).
        assert!(cap <= 1 << 16, "ROB capacity exceeds slot encoding");
        let words = cap.div_ceil(64);
        Rob {
            cap,
            mask: cap - 1,
            head: 0,
            len: 0,
            seq: vec![0; cap].into(),
            trace_idx: vec![0; cap].into(),
            sidx: vec![0; cap].into(),
            kind: vec![Kind::Direct; cap].into(),
            represents: vec![0; cap].into(),
            dest_arch: vec![0; cap].into(),
            dest_preg: vec![0; cap].into(),
            dest_prev: vec![0; cap].into(),
            src0: vec![NO_PREG; cap].into(),
            src1: vec![NO_PREG; cap].into(),
            pred_token: vec![0; cap].into(),
            wait_store: vec![NO_WAIT; cap].into(),
            completed_at: vec![u64::MAX; cap].into(),
            unissued: vec![0; words].into(),
            poll: vec![0; words].into(),
            in_iq: vec![0; words].into(),
            mispredicted: vec![0; words].into(),
            pred_taken: vec![0; words].into(),
            is_load: vec![0; words].into(),
            is_store: vec![0; words].into(),
        }
    }

    #[inline(always)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline(always)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Physical ring capacity (a power of two; may exceed the
    /// architectural ROB size).
    #[inline(always)]
    pub(crate) fn capacity(&self) -> usize {
        self.cap
    }

    /// Physical slot of the oldest entry (valid only when non-empty).
    #[inline(always)]
    pub(crate) fn head_slot(&self) -> usize {
        self.head
    }

    /// Physical slot of the youngest entry (valid only when non-empty).
    #[inline(always)]
    pub(crate) fn tail_slot(&self) -> usize {
        (self.head + self.len - 1) & self.mask
    }

    /// Physical slot of the `i`-th oldest entry.
    #[inline(always)]
    pub(crate) fn slot(&self, i: usize) -> usize {
        (self.head + i) & self.mask
    }

    /// Whether `slot` currently holds a live entry with sequence `seq` —
    /// the staleness filter for completion events and wait-store links
    /// (sequence numbers are never reused, so a match is definitive).
    #[inline(always)]
    pub(crate) fn is_live(&self, slot: usize, seq: u64) -> bool {
        let pos = (slot.wrapping_sub(self.head)) & self.mask;
        pos < self.len && self.seq[slot] == seq
    }

    /// Appends a dispatched entry at the tail; returns its slot.
    pub(crate) fn push(&mut self, p: RobPush) -> usize {
        debug_assert!(self.len < self.cap, "ROB ring overflow");
        let slot = (self.head + self.len) & self.mask;
        self.len += 1;
        self.seq[slot] = p.seq;
        self.trace_idx[slot] = p.trace_idx;
        self.sidx[slot] = p.sidx;
        self.kind[slot] = p.kind;
        self.represents[slot] = p.represents;
        self.dest_arch[slot] = p.dest_arch;
        self.dest_preg[slot] = p.dest_preg;
        self.dest_prev[slot] = p.dest_prev;
        self.src0[slot] = p.src0;
        self.src1[slot] = p.src1;
        self.pred_token[slot] = p.pred_token;
        self.wait_store[slot] = p.wait_store;
        self.completed_at[slot] = if p.completed { 0 } else { u64::MAX };
        // Popped slots leave every flag clear; only set what's true.
        debug_assert!(!bit_get(&self.unissued, slot) && !bit_get(&self.in_iq, slot));
        if !p.issued {
            bit_set(&mut self.unissued, slot);
            bit_set(&mut self.poll, slot);
        }
        if p.in_iq {
            bit_set(&mut self.in_iq, slot);
        }
        if p.mispredicted {
            bit_set(&mut self.mispredicted, slot);
        }
        if p.pred_taken {
            bit_set(&mut self.pred_taken, slot);
        }
        if p.is_load {
            bit_set(&mut self.is_load, slot);
        }
        if p.is_store {
            bit_set(&mut self.is_store, slot);
        }
        slot
    }

    /// Retires the head entry (read its lanes first). Clears every flag
    /// bit so the slot is pristine for reuse.
    pub(crate) fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.clear_flags(self.head);
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
    }

    /// Squashes the tail entry (read its lanes first).
    pub(crate) fn pop_back(&mut self) {
        debug_assert!(self.len > 0);
        self.clear_flags(self.tail_slot());
        self.len -= 1;
    }

    #[inline]
    fn clear_flags(&mut self, slot: usize) {
        bit_clear(&mut self.unissued, slot);
        bit_clear(&mut self.poll, slot);
        bit_clear(&mut self.in_iq, slot);
        bit_clear(&mut self.mispredicted, slot);
        bit_clear(&mut self.pred_taken, slot);
        bit_clear(&mut self.is_load, slot);
        bit_clear(&mut self.is_store, slot);
    }

    /// Logical index (0 = oldest) of the live entry with sequence `seq`.
    ///
    /// Sequence numbers are unique and increasing but NOT contiguous:
    /// violation squashes pop the tail without rolling back the
    /// allocator (so stale sequence numbers can never alias a newer
    /// entry). Binary-search by sequence over the logical order.
    pub(crate) fn find_seq(&self, seq: u64) -> Option<usize> {
        let mut lo = 0usize;
        let mut hi = self.len;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.seq[self.slot(mid)] < seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < self.len && self.seq[self.slot(lo)] == seq).then_some(lo)
    }
}

/// The struct-of-arrays front-end queue: fetched operations waiting out
/// the decode pipeline before dispatch.
pub(crate) struct FrontQ {
    cap: usize,
    mask: usize,
    head: usize,
    len: usize,
    pub(crate) trace_idx: Box<[u32]>,
    pub(crate) ready_at: Box<[u64]>,
    pub(crate) pred_token: Box<[u32]>,
    pub(crate) mispredicted: Box<[bool]>,
    pub(crate) pred_taken: Box<[bool]>,
}

impl FrontQ {
    /// A queue holding up to `capacity` fetched operations.
    pub(crate) fn new(capacity: usize) -> FrontQ {
        let cap = capacity.next_power_of_two().max(2);
        FrontQ {
            cap,
            mask: cap - 1,
            head: 0,
            len: 0,
            trace_idx: vec![0; cap].into(),
            ready_at: vec![0; cap].into(),
            pred_token: vec![0; cap].into(),
            mispredicted: vec![false; cap].into(),
            pred_taken: vec![false; cap].into(),
        }
    }

    #[inline(always)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline(always)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Physical slot of the oldest entry (valid only when non-empty).
    #[inline(always)]
    pub(crate) fn head_slot(&self) -> usize {
        self.head
    }

    pub(crate) fn push_back(
        &mut self,
        trace_idx: u32,
        ready_at: u64,
        mispredicted: bool,
        pred_taken: bool,
        pred_token: u32,
    ) {
        debug_assert!(self.len < self.cap, "front-queue ring overflow");
        let slot = (self.head + self.len) & self.mask;
        self.len += 1;
        self.trace_idx[slot] = trace_idx;
        self.ready_at[slot] = ready_at;
        self.pred_token[slot] = pred_token;
        self.mispredicted[slot] = mispredicted;
        self.pred_taken[slot] = pred_taken;
    }

    pub(crate) fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
    }

    /// Empties the queue (fetch redirect).
    pub(crate) fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

/// A struct-of-arrays load or store queue. Entries are pushed in
/// dispatch (sequence) order and leave from the head (commit) or tail
/// (squash), so ring order is age order; scans are linear — the queues
/// hold at most a few dozen entries.
pub(crate) struct MemQ {
    cap: usize,
    mask: usize,
    head: usize,
    len: usize,
    pub(crate) seq: Box<[u64]>,
    pub(crate) pc: Box<[u64]>,
    pub(crate) addr: Box<[u64]>,
    pub(crate) width: Box<[u8]>,
    pub(crate) trace_idx: Box<[u32]>,
    pub(crate) executed: Box<[bool]>,
}

impl MemQ {
    /// A queue holding up to `capacity` in-flight memory operations.
    pub(crate) fn new(capacity: usize) -> MemQ {
        let cap = capacity.next_power_of_two().max(2);
        MemQ {
            cap,
            mask: cap - 1,
            head: 0,
            len: 0,
            seq: vec![0; cap].into(),
            pc: vec![0; cap].into(),
            addr: vec![0; cap].into(),
            width: vec![0; cap].into(),
            trace_idx: vec![0; cap].into(),
            executed: vec![false; cap].into(),
        }
    }

    #[inline(always)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Physical slot of the `i`-th oldest entry.
    #[inline(always)]
    pub(crate) fn slot(&self, i: usize) -> usize {
        (self.head + i) & self.mask
    }

    /// Appends an entry at dispatch (address filled at execution).
    pub(crate) fn push_back(&mut self, seq: u64, pc: u64, trace_idx: u32) {
        debug_assert!(self.len < self.cap, "memory-queue ring overflow");
        let slot = (self.head + self.len) & self.mask;
        self.len += 1;
        self.seq[slot] = seq;
        self.pc[slot] = pc;
        self.addr[slot] = 0;
        self.width[slot] = 0;
        self.trace_idx[slot] = trace_idx;
        self.executed[slot] = false;
    }

    /// Retires the head entry; returns its slot (lanes stay readable
    /// until the next push).
    pub(crate) fn pop_front(&mut self) -> usize {
        debug_assert!(self.len > 0);
        let slot = self.head;
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        slot
    }

    /// Squashes the tail entry; returns its slot (lanes stay readable
    /// until the next push).
    pub(crate) fn pop_back(&mut self) -> usize {
        debug_assert!(self.len > 0);
        self.len -= 1;
        (self.head + self.len) & self.mask
    }

    /// Slot of the live entry with sequence `seq` (linear scan).
    pub(crate) fn find_seq(&self, seq: u64) -> Option<usize> {
        (0..self.len).map(|i| self.slot(i)).find(|&s| self.seq[s] == seq)
    }
}

/// Index of a functional-unit requirement in the `[ap, alu, load, store]`
/// reservation counters.
pub(crate) fn fu_index(f: FuReq) -> usize {
    match f {
        FuReq::AluPipeEntry => 0,
        FuReq::Alu => 1,
        FuReq::LoadPort => 2,
        FuReq::StorePort => 3,
    }
}

/// Whether two byte ranges `[a1, a1+w1)` and `[a2, a2+w2)` overlap.
pub(crate) fn overlap(a1: u64, w1: u8, a2: u64, w2: u8) -> bool {
    a1 < a2 + w2 as u64 && a2 < a1 + w1 as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank_push(seq: u64) -> RobPush {
        RobPush {
            seq,
            trace_idx: 0,
            sidx: 0,
            kind: Kind::Alu,
            represents: 1,
            dest_arch: crate::pipeline::decode::NO_REG,
            dest_preg: 0,
            dest_prev: 0,
            src0: NO_PREG,
            src1: NO_PREG,
            in_iq: true,
            issued: false,
            completed: false,
            mispredicted: false,
            pred_taken: false,
            pred_token: 0,
            wait_store: NO_WAIT,
            is_load: false,
            is_store: false,
        }
    }

    #[test]
    fn rob_ring_wraps_and_reuses_slots() {
        let mut rob = Rob::new(4);
        for seq in 0..4 {
            rob.push(blank_push(seq));
        }
        assert_eq!(rob.len(), 4);
        // Retire two, push two more: the ring wraps and the freed slots
        // come back with clean flags.
        rob.pop_front();
        rob.pop_front();
        let s4 = rob.push(blank_push(4));
        let s5 = rob.push(blank_push(5));
        assert_eq!((s4, s5), (0, 1), "slots recycle in ring order");
        assert!(bit_get(&rob.unissued, s4));
        assert!(rob.is_live(s4, 4));
        assert!(!rob.is_live(s4, 0), "stale seq must not read as live");
    }

    #[test]
    fn rob_find_seq_handles_gaps_and_wrap() {
        let mut rob = Rob::new(8);
        for seq in [0u64, 1, 5, 7, 9] {
            rob.push(blank_push(seq));
        }
        // Wrap the ring: retire the two oldest, add two younger.
        rob.pop_front();
        rob.pop_front();
        for seq in [12u64, 20, 21, 30, 31] {
            rob.push(blank_push(seq));
        }
        assert_eq!(rob.len(), 8);
        for (i, seq) in [5u64, 7, 9, 12, 20, 21, 30, 31].into_iter().enumerate() {
            assert_eq!(rob.find_seq(seq), Some(i));
        }
        for stale in [0u64, 1, 2, 6, 13, 32] {
            assert_eq!(rob.find_seq(stale), None, "stale seq {stale} must miss");
        }
    }

    #[test]
    fn memq_ring_order_is_age_order() {
        let mut q = MemQ::new(4);
        q.push_back(10, 0x100, 1);
        q.push_back(11, 0x104, 2);
        q.push_back(12, 0x108, 3);
        q.pop_front();
        q.push_back(13, 0x10c, 4);
        q.push_back(14, 0x110, 5);
        let seqs: Vec<u64> = (0..q.len()).map(|i| q.seq[q.slot(i)]).collect();
        assert_eq!(seqs, vec![11, 12, 13, 14]);
        let tail = q.pop_back();
        assert_eq!(q.seq[tail], 14);
        assert_eq!(q.find_seq(12), Some(q.slot(1)));
        assert_eq!(q.find_seq(14), None);
    }
}
