//! The execute stage: event-scheduled completion (with control
//! resolution and predictor training), cache-latency computation —
//! including MGST-sequenced mini-graph execution with interior-load
//! replay (paper §4.3) — executed-address bookkeeping, memory-ordering
//! violation detection, and the resulting squashes.
//!
//! Completion events carry `(seq << 16) | rob_slot` payloads, so
//! delivery indexes the ROB lanes directly and filters stale (squashed)
//! events with one sequence compare — no search. Only operations whose
//! completion does work beyond becoming retirable get an event at all:
//! control operations (predictor training, fetch redirect) and handles
//! (scheduler-entry release). Everything else completes passively via
//! the ROB's `completed_at` lane, which commit compares against `now`.

use super::decode::{Ctrl, NO_REG};
use super::entries::{bit_clear, bit_get, overlap, Kind};
use super::Simulator;
use crate::rename::RenamedDest;
use mg_isa::reg;

impl Simulator<'_> {
    // ----------------------------------------------------------- events --
    pub(crate) fn process_events(&mut self) {
        // `needs_harvest` covers overflow drainage too, so skipping the
        // harvest on an empty cycle never strands an in-horizon event.
        if !self.events.needs_harvest(self.now) {
            return;
        }
        let due = self.events.take_due(self.now);
        for &payload in &due {
            let slot = (payload & 0xFFFF) as usize;
            let seq = payload >> 16;
            // A live completion changes machine state; a stale (squashed)
            // one is dropped without trace, so it does not block
            // idle-skipping.
            if !self.rob.is_live(slot, seq) {
                continue;
            }
            self.progress = true;
            if bit_get(&self.rob.in_iq, slot) {
                // Handles hold their scheduler entry until the terminal
                // instruction (paper §4.1).
                bit_clear(&mut self.rob.in_iq, slot);
                self.iq_used -= 1;
            }
            let sidx = self.rob.sidx[slot] as usize;
            let trace_idx = self.rob.trace_idx[slot] as usize;
            // Control resolution: train predictor, redirect fetch.
            let op = self.trace.op(trace_idx);
            if let Some(br) = op.br {
                let pc = self.prog.byte_addr(sidx);
                // Handles train the direction predictor through their own
                // PC, like the conditional branch they embed (§4.1).
                let is_cond = matches!(self.pd.ctrl[sidx], Ctrl::Cond | Ctrl::Handle);
                if is_cond {
                    self.bpred.resolve(
                        pc,
                        self.rob.pred_token[slot],
                        bit_get(&self.rob.pred_taken, slot),
                        br.taken,
                    );
                }
                if br.taken {
                    self.btb.update(pc, self.prog.byte_addr(br.target));
                }
                if bit_get(&self.rob.mispredicted, slot) {
                    self.stats.mispredicts += 1;
                    if self.fetch_blocked_on == Some(trace_idx) {
                        self.fetch_blocked_on = None;
                        self.fetch_resume_at = self.now + 1;
                    }
                }
            }
        }
        self.events.recycle(due);
    }

    /// Execution latencies `(output, total)` for the entry at ROB slot
    /// `slot`, accounting for cache behaviour of its memory reference and
    /// mini-graph interior-load replays.
    pub(crate) fn latencies(&mut self, slot: usize) -> (u32, u32) {
        let op = self.trace.op(self.rob.trace_idx[slot] as usize);
        match self.rob.kind[slot] {
            Kind::Alu | Kind::Control => (1, 1),
            Kind::Mul => (3, 3),
            Kind::Direct => (1, 1),
            Kind::Load => {
                let mem = op.mem.expect("load has a memory reference");
                let res = self.mem.data(mem.addr, self.now);
                let lat = 1 + res.latency;
                (lat, lat)
            }
            Kind::Store => (1, 1), // agen only; data written at commit
            Kind::Handle => {
                let mgid = self.pd.mgid[self.rob.sidx[slot] as usize] as usize;
                let mut out = self.mg.out_lat[mgid];
                let mut total = self.mg.total_lat[mgid];
                if let Some(mem) = op.mem {
                    if !mem.store {
                        let slot_cycle = self.mg.load_slot_cycle[mgid];
                        debug_assert!(
                            slot_cycle != u32::MAX,
                            "load-bearing handle has a load slot"
                        );
                        let hit_lat = self.cfg.load_hit_latency();
                        let res = self.mem.data(mem.addr, self.now + slot_cycle as u64);
                        let actual = 1 + res.latency;
                        if actual > hit_lat {
                            let extra = actual - hit_lat;
                            if self.mg.load_terminal[mgid] {
                                // Terminal load: behaves like a singleton miss.
                                total += extra;
                                if self.mg.out_tracks_total[mgid] {
                                    out += extra;
                                }
                            } else {
                                // Interior load: the pre-scheduled MGST
                                // sequence ran with the wrong data — the
                                // entire mini-graph replays once the line
                                // arrives (paper §4.3).
                                self.stats.mg_replays += 1;
                                let data_at = slot_cycle + actual;
                                total = data_at + self.mg.total_lat[mgid];
                                out = data_at + self.mg.out_lat[mgid];
                            }
                        }
                    }
                }
                (out, total)
            }
        }
    }

    /// Records executed memory addresses and performs violation detection.
    pub(crate) fn issue_memory_effects(&mut self, slot: usize) {
        let seq = self.rob.seq[slot];
        let trace_idx = self.rob.trace_idx[slot] as usize;
        let Some(mem) = self.trace.op(trace_idx).mem else { return };
        if mem.store {
            if let Some(s) = self.sq.find_seq(seq) {
                self.sq.addr[s] = mem.addr;
                self.sq.width[s] = mem.width;
                self.sq.executed[s] = true;
            }
            // A later load must not have run already: memory-ordering
            // violation — squash from the offending load and refetch.
            // The LQ is in sequence order, so the first match scanning
            // from the head is the oldest offending load.
            let mut victim = None;
            for i in 0..self.lq.len() {
                let l = self.lq.slot(i);
                if self.lq.seq[l] > seq
                    && self.lq.executed[l]
                    && overlap(self.lq.addr[l], self.lq.width[l], mem.addr, mem.width)
                {
                    victim =
                        Some((self.lq.seq[l], self.lq.pc[l], self.lq.trace_idx[l] as usize));
                    break;
                }
            }
            if let Some((vseq, vpc, vtrace)) = victim {
                let pc = self.prog.byte_addr(self.rob.sidx[slot] as usize);
                self.stats.violations += 1;
                self.storesets.violation(vpc, pc);
                self.squash_from(vseq, vtrace);
            }
        } else if let Some(l) = self.lq.find_seq(seq) {
            self.lq.addr[l] = mem.addr;
            self.lq.width[l] = mem.width;
            self.lq.executed[l] = true;
        }
    }

    /// Squashes all operations with sequence ≥ `seq` and restarts fetch at
    /// trace position `trace_idx`.
    pub(crate) fn squash_from(&mut self, seq: u64, trace_idx: usize) {
        while !self.rob.is_empty() {
            let t = self.rob.tail_slot();
            if self.rob.seq[t] < seq {
                break;
            }
            if bit_get(&self.rob.in_iq, t) {
                self.iq_used -= 1;
            }
            let da = self.rob.dest_arch[t];
            if da != NO_REG {
                self.renamer.undo(
                    reg(da),
                    RenamedDest { preg: self.rob.dest_preg[t], prev: self.rob.dest_prev[t] },
                );
            }
            if bit_get(&self.rob.is_load, t) {
                self.lq.pop_back();
            }
            if bit_get(&self.rob.is_store, t) {
                let s = self.sq.pop_back();
                self.storesets.retire_store(self.sq.pc[s], self.sq.seq[s]);
            }
            self.rob.pop_back();
        }
        self.frontq.clear();
        self.fetch_ptr = trace_idx;
        self.fetch_resume_at = self.now + 1;
        if let Some(b) = self.fetch_blocked_on {
            if b >= trace_idx {
                self.fetch_blocked_on = None;
            }
        }
    }
}
