//! The execute stage: event-scheduled completion (with control
//! resolution and predictor training), cache-latency computation —
//! including MGST-sequenced mini-graph execution with interior-load
//! replay (paper §4.3) — executed-address bookkeeping, memory-ordering
//! violation detection, and the resulting squashes.

use super::entries::{overlap, Kind};
use super::Simulator;
use mg_core::FuReq;
use mg_isa::OpClass;

impl Simulator<'_> {
    // ----------------------------------------------------------- events --
    pub(crate) fn process_events(&mut self) {
        // Harvest every cycle (even when empty): this is also what pulls
        // newly-in-horizon overflow events into the wheel's ring.
        let due = self.events.take_due(self.now);
        for &seq in &due {
            let Some(i) = self.rob_index(seq) else { continue }; // squashed
                                                                 // A live completion changes machine state; a stale (squashed)
                                                                 // one is dropped without trace, so it does not block
                                                                 // idle-skipping.
            self.progress = true;
            let e = &mut self.rob[i];
            e.completed = true;
            if e.in_iq {
                // Handles hold their scheduler entry until the terminal
                // instruction (paper §4.1).
                e.in_iq = false;
                self.iq_used -= 1;
            }
            let (sidx, trace_idx, mispred, pred_taken, pred_token, kind) =
                (e.sidx, e.trace_idx, e.mispredicted, e.pred_taken, e.pred_token, e.kind);
            // Control resolution: train predictor, redirect fetch.
            let op = self.trace.op(trace_idx);
            if let Some(br) = op.br {
                let pc = self.prog.byte_addr(sidx as usize);
                let inst = &self.prog.insts[sidx as usize];
                // Handles train the direction predictor through their own
                // PC, like the conditional branch they embed (§4.1).
                let is_cond = inst.op.class() == OpClass::CondBranch || kind == Kind::Handle;
                if is_cond {
                    self.bpred.resolve(pc, pred_token, pred_taken, br.taken);
                }
                if br.taken {
                    self.btb.update(pc, self.prog.byte_addr(br.target));
                }
                if mispred {
                    self.stats.mispredicts += 1;
                    if self.fetch_blocked_on == Some(trace_idx) {
                        self.fetch_blocked_on = None;
                        self.fetch_resume_at = self.now + 1;
                    }
                }
            }
        }
        self.events.recycle(due);
    }

    /// Execution latencies `(output, total)` for the entry at `idx`,
    /// accounting for cache behaviour of its memory reference and
    /// mini-graph interior-load replays.
    pub(crate) fn latencies(&mut self, idx: usize) -> (u32, u32) {
        let e = &self.rob[idx];
        let op = self.trace.op(e.trace_idx);
        match e.kind {
            Kind::Alu | Kind::Control => (1, 1),
            Kind::Mul => (3, 3),
            Kind::Direct => (1, 1),
            Kind::Load => {
                let mem = op.mem.expect("load has a memory reference");
                let res = self.mem.data(mem.addr, self.now);
                let lat = 1 + res.latency;
                (lat, lat)
            }
            Kind::Store => (1, 1), // agen only; data written at commit
            Kind::Handle => {
                let inst = &self.prog.insts[e.sidx as usize];
                let mgid = inst.mgid().expect("handle has MGID");
                let sched = self.mgt.get(mgid).expect("MGT entry exists");
                let mut out = sched.out_latency.unwrap_or(sched.total_latency);
                let mut total = sched.total_latency;
                if let Some(mem) = op.mem {
                    if !mem.store {
                        // Locate the load slot to learn its scheduled cycle.
                        let load_slot = sched
                            .slots
                            .iter()
                            .position(|s| s.fu == Some(FuReq::LoadPort))
                            .expect("load-bearing handle has a load slot");
                        let slot_cycle = sched.slots[load_slot].cycle;
                        let hit_lat = self.cfg.load_hit_latency();
                        let res = self.mem.data(mem.addr, self.now + slot_cycle as u64);
                        let actual = 1 + res.latency;
                        if actual > hit_lat {
                            let extra = actual - hit_lat;
                            if load_slot + 1 == sched.slots.len() {
                                // Terminal load: behaves like a singleton miss.
                                total += extra;
                                if sched.out_latency.is_none()
                                    || sched.out_latency == Some(sched.total_latency)
                                {
                                    out += extra;
                                }
                            } else {
                                // Interior load: the pre-scheduled MGST
                                // sequence ran with the wrong data — the
                                // entire mini-graph replays once the line
                                // arrives (paper §4.3).
                                self.stats.mg_replays += 1;
                                let data_at = slot_cycle + actual;
                                total = data_at + sched.total_latency;
                                out =
                                    data_at + sched.out_latency.unwrap_or(sched.total_latency);
                            }
                        }
                    }
                }
                (out, total)
            }
        }
    }

    /// Records executed memory addresses and performs violation detection.
    pub(crate) fn issue_memory_effects(&mut self, idx: usize) {
        let e = &self.rob[idx];
        let seq = e.seq;
        let trace_idx = e.trace_idx;
        let pc = self.prog.byte_addr(e.sidx as usize);
        let Some(mem) = self.trace.op(trace_idx).mem else { return };
        if mem.store {
            if let Some(s) = self.sq.iter_mut().find(|s| s.seq == seq) {
                s.addr = mem.addr;
                s.width = mem.width;
                s.executed = true;
            }
            // A later load must not have run already: memory-ordering
            // violation — squash from the offending load and refetch.
            let victim = self
                .lq
                .iter()
                .filter(|l| {
                    l.seq > seq && l.executed && overlap(l.addr, l.width, mem.addr, mem.width)
                })
                .map(|l| (l.seq, l.pc, l.trace_idx))
                .min();
            if let Some((vseq, vpc, vtrace)) = victim {
                self.stats.violations += 1;
                self.storesets.violation(vpc, pc);
                self.squash_from(vseq, vtrace);
            }
        } else if let Some(l) = self.lq.iter_mut().find(|l| l.seq == seq) {
            l.addr = mem.addr;
            l.width = mem.width;
            l.executed = true;
        }
    }

    /// Squashes all operations with sequence ≥ `seq` and restarts fetch at
    /// trace position `trace_idx`.
    pub(crate) fn squash_from(&mut self, seq: u64, trace_idx: usize) {
        while let Some(back) = self.rob.back() {
            if back.seq < seq {
                break;
            }
            let e = self.rob.pop_back().expect("back exists");
            if e.in_iq {
                self.iq_used -= 1;
                if !e.issued {
                    self.iq_unissued -= 1;
                }
            }
            if let Some((r, renamed)) = e.dest {
                self.renamer.undo(r, renamed);
            }
            if e.is_load {
                self.lq.pop_back();
            }
            if e.is_store {
                let s = self.sq.pop_back().expect("store has an SQ entry");
                self.storesets.retire_store(s.pc, s.seq);
            }
        }
        self.frontq.clear();
        self.fetch_ptr = trace_idx;
        self.fetch_resume_at = self.now + 1;
        if let Some(b) = self.fetch_blocked_on {
            if b >= trace_idx {
                self.fetch_blocked_on = None;
            }
        }
    }
}
