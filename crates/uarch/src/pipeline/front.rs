//! The front end: branch-predicted, I$-limited fetch and width- and
//! resource-limited decode/rename (dispatch). Decode/rename is where
//! handles amplify bandwidth (one slot represents several instructions)
//! and capacity (one ROB/IQ entry, one destination register).
//!
//! Static-instruction properties (kind, control class, operands,
//! represented-instruction counts) come from the shared predecode plane
//! (`decode::Predecode`), so neither stage touches `Inst` on the hot
//! path.

use super::decode::{Ctrl, NO_REG};
use super::entries::{Kind, RobPush, NO_PREG, NO_WAIT};
use super::{Simulator, MAX_FETCH_LINES};
use mg_isa::reg;

impl Simulator<'_> {
    // --------------------------------------------------------- dispatch --
    pub(crate) fn dispatch(&mut self) {
        let mut n = 0;
        while n < self.cfg.front_width {
            if self.frontq.is_empty() {
                break;
            }
            let f = self.frontq.head_slot();
            if self.frontq.ready_at[f] > self.now {
                break;
            }
            let trace_idx = self.frontq.trace_idx[f] as usize;
            let mispredicted = self.frontq.mispredicted[f];
            let pred_taken = self.frontq.pred_taken[f];
            let pred_token = self.frontq.pred_token[f];
            let op = *self.trace.op(trace_idx);
            let sidx = op.sidx as usize;
            let kind = self.pd.kind[sidx];
            let is_load = op.mem.map(|m| !m.store).unwrap_or(false);
            let is_store = op.mem.map(|m| m.store).unwrap_or(false);

            // Structural resources.
            if self.rob.len() >= self.cfg.rob_size {
                self.stats.stall_rob += 1;
                break;
            }
            let needs_iq = kind != Kind::Direct;
            if needs_iq && self.iq_used >= self.cfg.iq_size {
                self.stats.stall_iq += 1;
                break;
            }
            if (is_load && self.lq.len() >= self.cfg.lq_size)
                || (is_store && self.sq.len() >= self.cfg.sq_size)
            {
                self.stats.stall_lsq += 1;
                break;
            }
            let dest_arch = self.pd.dest[sidx];
            if dest_arch != NO_REG && self.renamer.free_count() == 0 {
                self.stats.stall_pregs += 1;
                break;
            }

            // Rename.
            let a0 = self.pd.src0[sidx];
            let a1 = self.pd.src1[sidx];
            let src0 = if a0 != NO_REG { self.renamer.lookup(reg(a0)) } else { NO_PREG };
            let src1 = if a1 != NO_REG { self.renamer.lookup(reg(a1)) } else { NO_PREG };
            let (dest_preg, dest_prev) = if dest_arch != NO_REG {
                let renamed =
                    self.renamer.rename_dest(reg(dest_arch)).expect("free list checked above");
                self.preg_ready[renamed.preg as usize] = u64::MAX;
                (renamed.preg, renamed.prev)
            } else {
                (0, 0)
            };

            let seq = self.next_seq;
            self.next_seq += 1;
            let pc = self.prog.byte_addr(sidx);

            // Store sets participate via handle PCs for embedded memory ops.
            let mut wait_store = NO_WAIT;
            if is_load {
                if let Some(ws) = self.storesets.dispatch_load(pc) {
                    // Pack the predicted store's (seq, slot) so issue
                    // validates liveness in O(1). A store already retired
                    // by now can never block, exactly as before.
                    if let Some(i) = self.rob.find_seq(ws) {
                        wait_store = (ws << 16) | self.rob.slot(i) as u64;
                    }
                }
                self.lq.push_back(seq, pc, trace_idx as u32);
            }
            if is_store {
                self.storesets.dispatch_store(pc, seq);
                self.sq.push_back(seq, pc, trace_idx as u32);
            }

            if needs_iq {
                self.iq_used += 1;
            }
            if op.br.is_some() {
                self.stats.branches += 1;
            }
            self.rob.push(RobPush {
                seq,
                trace_idx: trace_idx as u32,
                sidx: op.sidx,
                kind,
                represents: self.pd.represents[sidx],
                dest_arch,
                dest_preg,
                dest_prev,
                src0,
                src1,
                in_iq: needs_iq,
                issued: !needs_iq,
                completed: kind == Kind::Direct,
                mispredicted,
                pred_taken,
                pred_token,
                wait_store,
                is_load,
                is_store,
            });
            self.frontq.pop_front();
            n += 1;
            self.progress = true;
        }
    }

    // ------------------------------------------------------------ fetch --
    pub(crate) fn fetch(&mut self, limit: usize) {
        if self.now < self.fetch_resume_at || self.fetch_blocked_on.is_some() {
            return;
        }
        let qcap = (self.cfg.front_width * self.cfg.frontend_depth) as usize;
        let line_bytes = self.cfg.il1.2 as u64;
        let mut fetched = 0;
        let mut lines_touched = 0u32;
        let mut last_line: Option<u64> = None;

        while fetched < self.cfg.front_width
            && self.frontq.len() < qcap
            && self.fetch_ptr < limit
        {
            // Entering the loop body always touches machine state: at
            // minimum an I$ access (which counts, and may start a miss).
            self.progress = true;
            let op = *self.trace.op(self.fetch_ptr);
            let addr = self.prog.byte_addr(op.sidx as usize);
            let line = addr / line_bytes;
            if last_line != Some(line) {
                if lines_touched >= MAX_FETCH_LINES {
                    break;
                }
                let res = self.mem.fetch(addr, self.now);
                lines_touched += 1;
                last_line = Some(line);
                if res.l1_miss {
                    // Stall fetch until the line arrives.
                    self.fetch_resume_at = self.now + res.latency as u64;
                    break;
                }
            }

            let (mispredicted, pred_taken, pred_token) =
                self.predict(op.sidx as usize, addr, &op);
            self.frontq.push_back(
                self.fetch_ptr as u32,
                self.now + self.cfg.frontend_depth as u64,
                mispredicted,
                pred_taken,
                pred_token,
            );
            let taken = op.br.map(|b| b.taken).unwrap_or(false);
            self.fetch_ptr += 1;
            fetched += 1;
            if mispredicted {
                self.fetch_blocked_on = Some(self.fetch_ptr - 1);
                break;
            }
            if taken {
                break; // redirect: fetch resumes at the target next cycle
            }
        }
    }

    /// Predicts a control transfer at fetch. Returns
    /// `(mispredicted, predicted_taken, prediction_token)`.
    pub(crate) fn predict(
        &mut self,
        sidx: usize,
        pc: u64,
        op: &mg_profile::DynOp,
    ) -> (bool, bool, u32) {
        let Some(br) = op.br else { return (false, false, 0) };
        let actual_target = self.prog.byte_addr(br.target);
        match self.pd.ctrl[sidx] {
            // The handle PC stands in for the embedded branch's PC for
            // prediction and update (paper §4.1).
            Ctrl::Cond | Ctrl::Handle => {
                let (pred, token) = self.bpred.predict_and_speculate(pc);
                let target_ok = !br.taken || self.btb.lookup(pc) == Some(actual_target);
                (pred != br.taken || (br.taken && !target_ok), pred, token)
            }
            Ctrl::Bsr => {
                // Return address is the next sequential instruction.
                self.ras.push(pc + mg_isa::program::INST_BYTES);
                let hit = self.btb.lookup(pc) == Some(actual_target);
                (!hit, true, 0)
            }
            Ctrl::OtherUncond | Ctrl::OtherJump => {
                let hit = self.btb.lookup(pc) == Some(actual_target);
                (!hit, true, 0)
            }
            Ctrl::Ret => {
                let pred = self.ras.pop();
                (pred != Some(actual_target), true, 0)
            }
            Ctrl::Jsr => {
                self.ras.push(pc + mg_isa::program::INST_BYTES);
                let hit = self.btb.lookup(pc) == Some(actual_target);
                (!hit, true, 0)
            }
            Ctrl::None => (false, false, 0),
        }
    }
}
