//! The front end: branch-predicted, I$-limited fetch and width- and
//! resource-limited decode/rename (dispatch). Decode/rename is where
//! handles amplify bandwidth (one slot represents several instructions)
//! and capacity (one ROB/IQ entry, one destination register).

use super::entries::{FrontOp, Kind, LqEntry, RobEntry, SqEntry};
use super::{Simulator, MAX_FETCH_LINES};
use mg_isa::{OpClass, Opcode};

impl Simulator<'_> {
    // --------------------------------------------------------- dispatch --
    pub(crate) fn dispatch(&mut self) {
        let mut n = 0;
        while n < self.cfg.front_width {
            let Some(front) = self.frontq.front() else { break };
            if front.ready_at > self.now {
                break;
            }
            let trace_idx = front.trace_idx;
            let mispredicted = front.mispredicted;
            let pred_taken = front.pred_taken;
            let pred_token = front.pred_token;
            let op = *self.trace.op(trace_idx);
            let inst = &self.prog.insts[op.sidx as usize];
            let kind = match inst.op.class() {
                OpClass::IntAlu => Kind::Alu,
                OpClass::IntMul => Kind::Mul,
                OpClass::Load => Kind::Load,
                OpClass::Store => Kind::Store,
                OpClass::CondBranch | OpClass::UncondBranch | OpClass::Jump => Kind::Control,
                OpClass::Handle => Kind::Handle,
                OpClass::Nop | OpClass::Pad | OpClass::Halt => Kind::Direct,
            };
            let is_load = op.mem.map(|m| !m.store).unwrap_or(false);
            let is_store = op.mem.map(|m| m.store).unwrap_or(false);

            // Structural resources.
            if self.rob.len() >= self.cfg.rob_size {
                self.stats.stall_rob += 1;
                break;
            }
            let needs_iq = kind != Kind::Direct;
            if needs_iq && self.iq_used >= self.cfg.iq_size {
                self.stats.stall_iq += 1;
                break;
            }
            if (is_load && self.lq.len() >= self.cfg.lq_size)
                || (is_store && self.sq.len() >= self.cfg.sq_size)
            {
                self.stats.stall_lsq += 1;
                break;
            }
            let arch_dest = inst.dest_reg();
            if arch_dest.is_some() && self.renamer.free_count() == 0 {
                self.stats.stall_pregs += 1;
                break;
            }

            // Rename.
            let srcs = inst.src_regs().map(|s| s.map(|r| self.renamer.lookup(r)));
            let dest = arch_dest.map(|r| {
                let renamed = self.renamer.rename_dest(r).expect("free list checked above");
                self.preg_ready[renamed.preg as usize] = u64::MAX;
                (r, renamed)
            });

            let seq = self.next_seq;
            self.next_seq += 1;
            let pc = self.prog.byte_addr(op.sidx as usize);

            // Store sets participate via handle PCs for embedded memory ops.
            let mut wait_store = None;
            if is_load {
                wait_store = self.storesets.dispatch_load(pc);
                self.lq.push_back(LqEntry {
                    seq,
                    pc,
                    addr: 0,
                    width: 0,
                    executed: false,
                    trace_idx,
                });
            }
            if is_store {
                self.storesets.dispatch_store(pc, seq);
                self.sq.push_back(SqEntry { seq, pc, addr: 0, width: 0, executed: false });
            }

            let represents = match kind {
                Kind::Handle => {
                    let mgid = inst.mgid().expect("handle has MGID");
                    self.mgt.get(mgid).expect("handle refers to a packed MGT entry").slots.len()
                        as u32
                }
                _ => 1,
            };
            let completed = kind == Kind::Direct;
            if needs_iq {
                self.iq_used += 1;
                self.iq_unissued += 1;
            }
            if op.br.is_some() {
                self.stats.branches += 1;
            }
            self.rob.push_back(RobEntry {
                seq,
                trace_idx,
                sidx: op.sidx,
                kind,
                represents,
                dest,
                srcs,
                in_iq: needs_iq,
                issued: !needs_iq,
                completed,
                mispredicted,
                pred_taken,
                pred_token,
                wait_store,
                is_store,
                is_load,
            });
            self.frontq.pop_front();
            n += 1;
            self.progress = true;
        }
    }

    // ------------------------------------------------------------ fetch --
    pub(crate) fn fetch(&mut self, limit: usize) {
        if self.now < self.fetch_resume_at || self.fetch_blocked_on.is_some() {
            return;
        }
        let qcap = (self.cfg.front_width * self.cfg.frontend_depth) as usize;
        let line_bytes = self.cfg.il1.2 as u64;
        let mut fetched = 0;
        let mut lines_touched = 0u32;
        let mut last_line: Option<u64> = None;

        while fetched < self.cfg.front_width
            && self.frontq.len() < qcap
            && self.fetch_ptr < limit
        {
            // Entering the loop body always touches machine state: at
            // minimum an I$ access (which counts, and may start a miss).
            self.progress = true;
            let op = *self.trace.op(self.fetch_ptr);
            let addr = self.prog.byte_addr(op.sidx as usize);
            let line = addr / line_bytes;
            if last_line != Some(line) {
                if lines_touched >= MAX_FETCH_LINES {
                    break;
                }
                let res = self.mem.fetch(addr, self.now);
                lines_touched += 1;
                last_line = Some(line);
                if res.l1_miss {
                    // Stall fetch until the line arrives.
                    self.fetch_resume_at = self.now + res.latency as u64;
                    break;
                }
            }

            let inst = &self.prog.insts[op.sidx as usize];
            let (mispredicted, pred_taken, pred_token) = self.predict(inst, addr, &op);
            self.frontq.push_back(FrontOp {
                trace_idx: self.fetch_ptr,
                ready_at: self.now + self.cfg.frontend_depth as u64,
                mispredicted,
                pred_taken,
                pred_token,
            });
            let taken = op.br.map(|b| b.taken).unwrap_or(false);
            self.fetch_ptr += 1;
            fetched += 1;
            if mispredicted {
                self.fetch_blocked_on = Some(self.fetch_ptr - 1);
                break;
            }
            if taken {
                break; // redirect: fetch resumes at the target next cycle
            }
        }
    }

    /// Predicts a control transfer at fetch. Returns
    /// `(mispredicted, predicted_taken, prediction_token)`.
    pub(crate) fn predict(
        &mut self,
        inst: &mg_isa::Inst,
        pc: u64,
        op: &mg_profile::DynOp,
    ) -> (bool, bool, u32) {
        let Some(br) = op.br else { return (false, false, 0) };
        let actual_target = self.prog.byte_addr(br.target);
        match inst.op.class() {
            // The handle PC stands in for the embedded branch's PC for
            // prediction and update (paper §4.1).
            OpClass::CondBranch | OpClass::Handle => {
                let (pred, token) = self.bpred.predict_and_speculate(pc);
                let target_ok = !br.taken || self.btb.lookup(pc) == Some(actual_target);
                (pred != br.taken || (br.taken && !target_ok), pred, token)
            }
            OpClass::UncondBranch => {
                if inst.op == Opcode::Bsr {
                    // Return address is the next sequential instruction.
                    self.ras.push(pc + mg_isa::program::INST_BYTES);
                }
                let hit = self.btb.lookup(pc) == Some(actual_target);
                (!hit, true, 0)
            }
            OpClass::Jump => match inst.op {
                Opcode::Ret => {
                    let pred = self.ras.pop();
                    (pred != Some(actual_target), true, 0)
                }
                Opcode::Jsr => {
                    self.ras.push(pc + mg_isa::program::INST_BYTES);
                    let hit = self.btb.lookup(pc) == Some(actual_target);
                    (!hit, true, 0)
                }
                _ => {
                    let hit = self.btb.lookup(pc) == Some(actual_target);
                    (!hit, true, 0)
                }
            },
            _ => (false, false, 0),
        }
    }
}
