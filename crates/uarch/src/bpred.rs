//! Branch prediction: hybrid direction predictor, branch target buffer,
//! and return-address stack.
//!
//! The paper models "a 12Kb hybrid branch direction predictor and a
//! 2K-entry 4-way set-associative target buffer". We implement the classic
//! bimodal + gshare + chooser hybrid with 2K × 2-bit tables each (12Kbit
//! total), a 2K-entry 4-way BTB, and a 16-deep return-address stack.

/// A 2-bit saturating counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Counter2(u8);

impl Counter2 {
    fn taken(self) -> bool {
        self.0 >= 2
    }
    fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// Hybrid (bimodal + gshare + chooser) direction predictor.
#[derive(Clone, Debug)]
pub struct HybridPredictor {
    bimodal: Vec<Counter2>,
    gshare: Vec<Counter2>,
    chooser: Vec<Counter2>,
    history: u64,
    mask: u64,
}

impl HybridPredictor {
    /// Creates a predictor with `entries`-sized tables (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> HybridPredictor {
        assert!(entries.is_power_of_two(), "table size must be a power of two");
        HybridPredictor {
            bimodal: vec![Counter2(1); entries],
            gshare: vec![Counter2(1); entries],
            chooser: vec![Counter2(2); entries],
            history: 0,
            mask: entries as u64 - 1,
        }
    }

    /// The paper's 12Kb configuration: three 2K × 2-bit tables.
    pub fn paper_12kb() -> HybridPredictor {
        HybridPredictor::new(2048)
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ (pc >> 13)) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc` and speculatively
    /// updates the global history. Returns the prediction and a token that
    /// must be passed back to [`HybridPredictor::resolve`] (it captures the
    /// gshare index computed from the history *at prediction time*).
    pub fn predict_and_speculate(&mut self, pc: u64) -> (bool, u32) {
        let bi = self.bimodal_index(pc);
        let gi = (((pc >> 2) ^ self.history) & self.mask) as usize;
        let pred = if self.chooser[bi].taken() {
            self.gshare[gi].taken()
        } else {
            self.bimodal[bi].taken()
        };
        self.history = ((self.history << 1) | pred as u64) & self.mask;
        (pred, gi as u32)
    }

    /// Trains the tables with the resolved outcome. `token` is the value
    /// returned by the matching [`HybridPredictor::predict_and_speculate`];
    /// on a misprediction the speculative history is repaired.
    pub fn resolve(&mut self, pc: u64, token: u32, predicted: bool, taken: bool) {
        let bi = self.bimodal_index(pc);
        let gi = token as usize & self.mask as usize;
        let g_correct = self.gshare[gi].taken() == taken;
        let b_correct = self.bimodal[bi].taken() == taken;
        if g_correct != b_correct {
            self.chooser[bi].update(g_correct);
        }
        self.bimodal[bi].update(taken);
        self.gshare[gi].update(taken);
        if predicted != taken {
            // Repair the youngest speculative history bit.
            self.history = ((self.history & !1) | taken as u64) & self.mask;
        }
    }
}

/// A branch target buffer entry.
#[derive(Clone, Copy, Debug, Default)]
struct BtbEntry {
    tag: u64,
    target: u64,
    valid: bool,
    lru: u64,
}

/// Set-associative branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    sets: Vec<Vec<BtbEntry>>,
    ways: usize,
    tick: u64,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries / ways` is not a power of two.
    pub fn new(entries: usize, ways: usize) -> Btb {
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "BTB set count must be a power of two");
        Btb { sets: vec![vec![BtbEntry::default(); ways]; sets], ways, tick: 0 }
    }

    /// The paper's 2K-entry 4-way configuration.
    pub fn paper_2k() -> Btb {
        Btb::new(2048, 4)
    }

    fn set_of(&self, pc: u64) -> usize {
        (pc as usize >> 2) & (self.sets.len() - 1)
    }

    /// Looks up the predicted target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.tick += 1;
        let si = self.set_of(pc);
        for e in &mut self.sets[si] {
            if e.valid && e.tag == pc {
                e.lru = self.tick;
                return Some(e.target);
            }
        }
        None
    }

    /// Installs or updates the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let si = self.set_of(pc);
        if let Some(e) = self.sets[si].iter_mut().find(|e| e.valid && e.tag == pc) {
            e.target = target;
            e.lru = self.tick;
            return;
        }
        let victim = (0..self.ways)
            .min_by_key(|&w| {
                let e = &self.sets[si][w];
                if e.valid {
                    e.lru
                } else {
                    0
                }
            })
            .expect("BTB has at least one way");
        self.sets[si][victim] = BtbEntry { tag: pc, target, valid: true, lru: self.tick };
    }
}

/// Return-address stack.
#[derive(Clone, Debug)]
pub struct Ras {
    stack: Vec<u64>,
    cap: usize,
}

impl Ras {
    /// Creates a RAS of the given depth.
    pub fn new(cap: usize) -> Ras {
        Ras { stack: Vec::with_capacity(cap), cap }
    }

    /// Pushes a return address (calls).
    pub fn push(&mut self, addr: u64) {
        if self.stack.len() == self.cap {
            self.stack.remove(0);
        }
        self.stack.push(addr);
    }

    /// Pops the predicted return address (returns).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bimodal_learns_biased_branch() {
        let mut p = HybridPredictor::new(256);
        for _ in 0..8 {
            let (pred, tok) = p.predict_and_speculate(0x40);
            p.resolve(0x40, tok, pred, true);
        }
        assert!(p.predict_and_speculate(0x40).0, "always-taken branch learned");
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut p = HybridPredictor::new(1024);
        let mut correct = 0;
        let mut total = 0;
        let mut t = false;
        for i in 0..400 {
            t = !t; // strict alternation — bimodal can't learn this
            let (pred, tok) = p.predict_and_speculate(0x80);
            p.resolve(0x80, tok, pred, t);
            if i >= 200 {
                total += 1;
                if pred == t {
                    correct += 1;
                }
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.9,
            "history-based component must capture alternation: {correct}/{total}"
        );
    }

    #[test]
    fn btb_hits_after_update() {
        let mut b = Btb::new(64, 4);
        assert_eq!(b.lookup(0x1000), None);
        b.update(0x1000, 0x2000);
        assert_eq!(b.lookup(0x1000), Some(0x2000));
        b.update(0x1000, 0x3000);
        assert_eq!(b.lookup(0x1000), Some(0x3000));
    }

    #[test]
    fn btb_replaces_lru() {
        let mut b = Btb::new(4, 4); // one set
        for i in 0..4u64 {
            b.update(0x100 + i * 0x400, i);
        }
        let _ = b.lookup(0x100); // refresh way 0
        b.update(0x2000, 99); // evicts the least recently used, not 0x100
        assert_eq!(b.lookup(0x100), Some(0));
        assert_eq!(b.lookup(0x2000), Some(99));
    }

    #[test]
    fn ras_round_trip() {
        let mut r = Ras::new(2);
        r.push(10);
        r.push(20);
        r.push(30); // overflows: discards the oldest
        assert_eq!(r.pop(), Some(30));
        assert_eq!(r.pop(), Some(20));
        assert_eq!(r.pop(), None);
    }
}
