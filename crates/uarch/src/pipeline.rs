//! The cycle-level out-of-order pipeline.
//!
//! A trace-driven model of the paper's 15-stage, 6-wide superscalar core:
//! fetch (branch-predicted, I$-limited) → decode/rename (width- and
//! resource-limited; this is where handles amplify bandwidth and capacity)
//! → issue (FU, write-port, and sliding-window constrained) → execute
//! (event-scheduled completion; D$ hierarchy; store-set load scheduling
//! with violation squashes; MGST-sequenced mini-graph execution with
//! interior-load replay) → commit (width-limited, frees registers).
//!
//! Wrong-path instructions are not simulated: a mispredicted control
//! transfer stalls fetch until it resolves, then the front-end refills —
//! reproducing the misprediction penalty of the paper's pipeline without
//! wrong-path cache pollution (see `DESIGN.md` §2 for the substitution
//! argument).

use crate::bpred::{Btb, HybridPredictor, Ras};
use crate::cache::MemHierarchy;
use crate::config::{MgSupport, SimConfig};
use crate::rename::{PReg, RenamedDest, Renamer};
use crate::stats::SimStats;
use crate::storesets::StoreSets;
use mg_core::{FuReq, MgTable};
use mg_isa::{HandleCatalog, OpClass, Opcode, Program, Reg};
use mg_profile::Trace;
use std::collections::{BTreeMap, VecDeque};

/// Ring size for near-future resource reservations (FUs, write ports).
const RESV_RING: usize = 256;
/// Maximum instruction-cache lines fetch may touch per cycle.
const MAX_FETCH_LINES: u32 = 2;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Alu,
    Mul,
    Load,
    Store,
    Control,
    Handle,
    Direct, // nop/halt: no execution
}

#[derive(Clone, Debug)]
struct FrontOp {
    trace_idx: usize,
    ready_at: u64,
    mispredicted: bool,
    pred_taken: bool,
    pred_token: u32,
}

#[derive(Clone, Debug)]
struct RobEntry {
    seq: u64,
    trace_idx: usize,
    sidx: u32,
    kind: Kind,
    represents: u32,
    dest: Option<(Reg, RenamedDest)>,
    srcs: [Option<PReg>; 2],
    in_iq: bool,
    issued: bool,
    completed: bool,
    mispredicted: bool,
    pred_taken: bool,
    pred_token: u32,
    wait_store: Option<u64>,
    is_store: bool,
    is_load: bool,
}

#[derive(Clone, Copy, Debug)]
struct LqEntry {
    seq: u64,
    pc: u64,
    addr: u64,
    width: u8,
    executed: bool,
    trace_idx: usize,
}

#[derive(Clone, Copy, Debug)]
struct SqEntry {
    seq: u64,
    pc: u64,
    addr: u64,
    width: u8,
    executed: bool,
}

/// The trace-driven cycle-level simulator.
///
/// Construct with [`Simulator::new`], run with [`Simulator::run`].
pub struct Simulator<'a> {
    cfg: SimConfig,
    prog: &'a Program,
    trace: &'a Trace,
    mgt: MgTable,
    // Front end.
    fetch_ptr: usize,
    fetch_resume_at: u64,
    fetch_blocked_on: Option<usize>,
    frontq: VecDeque<FrontOp>,
    // Back end.
    rob: VecDeque<RobEntry>,
    next_seq: u64,
    iq_used: usize,
    renamer: Renamer,
    preg_ready: Vec<u64>,
    lq: VecDeque<LqEntry>,
    sq: VecDeque<SqEntry>,
    // Predictors and memory.
    bpred: HybridPredictor,
    btb: Btb,
    ras: Ras,
    storesets: StoreSets,
    mem: MemHierarchy,
    // Events and reservations.
    events: BTreeMap<u64, Vec<u64>>,
    resv_fu: Vec<[u16; 4]>, // [ap, alu, load, store] per future cycle
    resv_wb: Vec<u16>,
    now: u64,
    stats: SimStats,
}

fn fu_index(f: FuReq) -> usize {
    match f {
        FuReq::AluPipeEntry => 0,
        FuReq::Alu => 1,
        FuReq::LoadPort => 2,
        FuReq::StorePort => 3,
    }
}

fn overlap(a1: u64, w1: u8, a2: u64, w2: u8) -> bool {
    a1 < a2 + w2 as u64 && a2 < a1 + w1 as u64
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the rewritten `prog`, its committed-path
    /// `trace`, and the mini-graph `catalog` used by the image (pass an
    /// empty catalog for baseline images).
    pub fn new(
        cfg: SimConfig,
        prog: &'a Program,
        trace: &'a Trace,
        catalog: &HandleCatalog,
    ) -> Simulator<'a> {
        let mgt = MgTable::from_catalog(catalog, &cfg.mgt_config());
        let renamer = Renamer::new(cfg.phys_regs);
        let preg_ready = vec![0u64; cfg.phys_regs];
        Simulator {
            mgt,
            renamer,
            preg_ready,
            fetch_ptr: 0,
            fetch_resume_at: 0,
            fetch_blocked_on: None,
            frontq: VecDeque::new(),
            rob: VecDeque::new(),
            next_seq: 0,
            iq_used: 0,
            lq: VecDeque::new(),
            sq: VecDeque::new(),
            bpred: HybridPredictor::paper_12kb(),
            btb: Btb::paper_2k(),
            ras: Ras::new(16),
            storesets: StoreSets::default_size(),
            mem: MemHierarchy::new(cfg.il1, cfg.dl1, cfg.l2, cfg.mem_latency, cfg.mem_bus_occupancy),
            events: BTreeMap::new(),
            resv_fu: vec![[0; 4]; RESV_RING],
            resv_wb: vec![0; RESV_RING],
            now: 0,
            stats: SimStats::default(),
            cfg,
            prog,
            trace,
        }
    }

    /// Runs the whole trace (or `cfg.max_ops` operations) to completion and
    /// returns the statistics.
    ///
    /// # Panics
    ///
    /// Panics if the image contains integer-memory handles but the machine
    /// has no sliding-window scheduler, or handles with no mini-graph
    /// support at all (selection policy and machine must agree).
    pub fn run(mut self) -> SimStats {
        let limit = if self.cfg.max_ops == 0 {
            self.trace.ops.len()
        } else {
            (self.cfg.max_ops as usize).min(self.trace.ops.len())
        };
        // Guard against pathological configs: bound total cycles.
        let cycle_cap = 2_000 + 600 * limit as u64;
        while !(self.fetch_ptr >= limit && self.frontq.is_empty() && self.rob.is_empty()) {
            self.commit();
            self.process_events();
            self.issue();
            self.dispatch();
            self.fetch(limit);
            self.stats.preg_occupancy_sum += self.renamer.in_use() as u64;
            self.stats.iq_occupancy_sum += self.iq_used as u64;
            self.stats.rob_occupancy_sum += self.rob.len() as u64;
            let idx = (self.now as usize) % RESV_RING;
            self.resv_fu[idx] = [0; 4];
            self.resv_wb[idx] = 0;
            self.now += 1;
            assert!(
                self.now < cycle_cap,
                "simulation wedged at cycle {} (fetch {}/{} rob {})",
                self.now,
                self.fetch_ptr,
                limit,
                self.rob.len()
            );
        }
        self.stats.cycles = self.now;
        self.stats.il1_accesses = self.mem.il1.accesses;
        self.stats.il1_misses = self.mem.il1.misses;
        self.stats.dl1_accesses = self.mem.dl1.accesses;
        self.stats.dl1_misses = self.mem.dl1.misses;
        self.stats.l2_accesses = self.mem.l2.accesses;
        self.stats.l2_misses = self.mem.l2.misses;
        self.stats
    }

    fn rob_index(&self, seq: u64) -> Option<usize> {
        // Sequence numbers are unique and increasing but NOT contiguous:
        // violation squashes pop the tail without rolling back the
        // allocator (so stale completion events can never alias a newer
        // entry). Binary-search by sequence.
        let i = self.rob.partition_point(|e| e.seq < seq);
        (i < self.rob.len() && self.rob[i].seq == seq).then_some(i)
    }

    // ----------------------------------------------------------- commit --
    fn commit(&mut self) {
        let mut n = 0;
        while n < self.cfg.front_width {
            let Some(head) = self.rob.front() else { break };
            if !head.completed {
                break;
            }
            let head = self.rob.pop_front().expect("head exists");
            if head.is_store {
                // The store-queue head writes the data cache at retirement.
                let e = self.sq.pop_front().expect("store has an SQ entry");
                self.mem.data(e.addr, self.now);
                self.storesets.retire_store(e.pc, e.seq);
            }
            if head.is_load {
                self.lq.pop_front().expect("load has an LQ entry");
            }
            if let Some((_, renamed)) = head.dest {
                self.renamer.release(renamed.prev);
            }
            self.stats.ops += 1;
            self.stats.insts += head.represents as u64;
            if head.kind == Kind::Handle {
                self.stats.handles += 1;
                self.stats.handle_insts += head.represents as u64;
            }
            n += 1;
        }
    }

    // ----------------------------------------------------------- events --
    fn process_events(&mut self) {
        let due: Vec<u64> = match self.events.remove(&self.now) {
            Some(v) => v,
            None => return,
        };
        for seq in due {
            let Some(i) = self.rob_index(seq) else { continue }; // squashed
            let e = &mut self.rob[i];
            e.completed = true;
            if e.in_iq {
                // Handles hold their scheduler entry until the terminal
                // instruction (paper §4.1).
                e.in_iq = false;
                self.iq_used -= 1;
            }
            let (sidx, trace_idx, mispred, pred_taken, pred_token, kind) =
                (e.sidx, e.trace_idx, e.mispredicted, e.pred_taken, e.pred_token, e.kind);
            // Control resolution: train predictor, redirect fetch.
            let op = &self.trace.ops[trace_idx];
            if let Some(br) = op.br {
                let pc = self.prog.byte_addr(sidx as usize);
                let inst = &self.prog.insts[sidx as usize];
                // Handles train the direction predictor through their own
                // PC, like the conditional branch they embed (§4.1).
                let is_cond = inst.op.class() == OpClass::CondBranch || kind == Kind::Handle;
                if is_cond {
                    self.bpred.resolve(pc, pred_token, pred_taken, br.taken);
                }
                if br.taken {
                    self.btb.update(pc, self.prog.byte_addr(br.target));
                }
                if mispred {
                    self.stats.mispredicts += 1;
                    if self.fetch_blocked_on == Some(trace_idx) {
                        self.fetch_blocked_on = None;
                        self.fetch_resume_at = self.now + 1;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------ issue --
    fn issue(&mut self) {
        let mut issued = 0u32;
        let mut used = [0u16; 4]; // ap, alu, load, store (this cycle)
        let mut intmem_handles = 0u32;
        let plain_alus = self.cfg.plain_alus() as u16;
        let pipes = self.cfg.pipes() as u16;
        let cap = |f: usize, cfg: &SimConfig| -> u16 {
            match f {
                0 => cfg.pipes() as u16,
                1 => cfg.plain_alus() as u16,
                2 => cfg.load_ports as u16,
                3 => cfg.store_ports as u16,
                _ => 0,
            }
        };

        let mut idx = 0;
        while idx < self.rob.len() && issued < self.cfg.issue_width {
            let e = &self.rob[idx];
            if !e.in_iq || e.issued {
                idx += 1;
                continue;
            }
            // Operand readiness (including the scheduler-loop latency
            // already folded into preg_ready at the producer's issue).
            let ready = e
                .srcs
                .iter()
                .flatten()
                .all(|&p| self.preg_ready[p as usize] <= self.now);
            if !ready {
                idx += 1;
                continue;
            }
            // Store-set ordering: loads wait for their predicted store.
            if let Some(ws) = e.wait_store {
                let blocked = match self.rob_index(ws) {
                    Some(si) => !self.rob[si].issued,
                    None => false, // already retired
                };
                if blocked {
                    idx += 1;
                    continue;
                }
            }

            let kind = e.kind;
            let seq = e.seq;
            // Functional unit + write-port admission for this cycle.
            let admitted = match kind {
                Kind::Alu | Kind::Mul | Kind::Control => {
                    // Prefer a plain ALU; singletons may use an AP entry
                    // with no penalty.
                    if used[1] < plain_alus {
                        used[1] += 1;
                        true
                    } else if used[0] < pipes {
                        used[0] += 1;
                        true
                    } else {
                        false
                    }
                }
                Kind::Load => {
                    let i = fu_index(FuReq::LoadPort);
                    let ring = (self.now as usize) % RESV_RING;
                    if used[i] + self.resv_fu[ring][i] < cap(i, &self.cfg) {
                        used[i] += 1;
                        true
                    } else {
                        false
                    }
                }
                Kind::Store => {
                    let i = fu_index(FuReq::StorePort);
                    let ring = (self.now as usize) % RESV_RING;
                    if used[i] + self.resv_fu[ring][i] < cap(i, &self.cfg) {
                        used[i] += 1;
                        true
                    } else {
                        false
                    }
                }
                Kind::Handle => {
                    let inst = &self.prog.insts[e.sidx as usize];
                    let mgid = inst.mgid().expect("handle has MGID");
                    let sched = self.mgt.get(mgid).expect("MGT entry exists").clone();
                    if sched.on_alu_pipe {
                        if used[0] < pipes {
                            used[0] += 1;
                            true
                        } else {
                            false
                        }
                    } else {
                        // Integer-memory handle: sliding-window scheduler,
                        // at most one per cycle; all downstream FUs must be
                        // reservable or the issue slot is lost (§4.3).
                        assert_eq!(
                            self.cfg.mg,
                            MgSupport::IntegerMemory,
                            "integer-memory handle on a machine without a sliding-window scheduler"
                        );
                        if intmem_handles >= 1 {
                            false
                        } else {
                            let fu0 = fu_index(sched.fu0);
                            let ring = (self.now as usize) % RESV_RING;
                            let fu0_ok = used[fu0] + self.resv_fu[ring][fu0] < cap(fu0, &self.cfg);
                            let window_ok = sched.fubmp().all(|(c, f)| {
                                let r = ((self.now + c as u64) as usize) % RESV_RING;
                                self.resv_fu[r][fu_index(f)] < cap(fu_index(f), &self.cfg)
                            });
                            if fu0_ok && window_ok {
                                used[fu0] += 1;
                                for (c, f) in sched.fubmp() {
                                    let r = ((self.now + c as u64) as usize) % RESV_RING;
                                    self.resv_fu[r][fu_index(f)] += 1;
                                }
                                intmem_handles += 1;
                                true
                            } else {
                                // The slot used to attempt issue is lost.
                                issued += 1;
                                false
                            }
                        }
                    }
                }
                Kind::Direct => true,
            };
            if !admitted {
                idx += 1;
                continue;
            }

            // Write-port reservation at the (nominal) output cycle. The
            // nominal latency assumes a cache hit; a miss writes back later
            // through one of the ports freed by the stall it causes.
            let nominal = self.nominal_out_latency(idx);
            if self.rob[idx].dest.is_some() {
                let r = ((self.now + nominal as u64) as usize) % RESV_RING;
                if self.resv_wb[r] >= self.cfg.prf_write_ports as u16 {
                    // Reverting FU bookkeeping is unnecessary: counters are
                    // per-attempt upper bounds within one cycle; skipping
                    // here only under-uses the FU this cycle.
                    idx += 1;
                    continue;
                }
                self.resv_wb[r] += 1;
            }
            // Committed to issuing: perform the (single) cache access and
            // compute actual latencies.
            let (out_lat, total_lat) = self.latencies(idx);

            // Issue!
            let e = &mut self.rob[idx];
            e.issued = true;
            if e.kind != Kind::Handle {
                // Handles keep their scheduler entry until the terminal op.
                e.in_iq = false;
                self.iq_used -= 1;
            }
            if let Some((_, renamed)) = e.dest {
                self.preg_ready[renamed.preg as usize] =
                    self.now + (out_lat.max(self.cfg.sched_loop)) as u64;
            }
            self.events.entry(self.now + total_lat as u64).or_default().push(seq);
            issued += 1;

            // Memory side effects (agen/dcache) and violation checks.
            self.issue_memory_effects(idx);
            // Re-check: issue_memory_effects may squash younger entries
            // (memory-ordering violation found by a store) — in that case
            // `idx` may now be past the end.
            idx += 1;
            if idx > self.rob.len() {
                break;
            }
        }
    }

    /// Nominal (cache-hit) output latency used for write-port reservation,
    /// computed without touching the memory hierarchy.
    fn nominal_out_latency(&self, idx: usize) -> u32 {
        let e = &self.rob[idx];
        match e.kind {
            Kind::Alu | Kind::Control | Kind::Direct | Kind::Store => 1,
            Kind::Mul => 3,
            Kind::Load => self.cfg.load_hit_latency(),
            Kind::Handle => {
                let inst = &self.prog.insts[e.sidx as usize];
                let mgid = inst.mgid().expect("handle has MGID");
                let sched = self.mgt.get(mgid).expect("MGT entry exists");
                sched.out_latency.unwrap_or(sched.total_latency)
            }
        }
    }

    /// Execution latencies `(output, total)` for the entry at `idx`,
    /// accounting for cache behaviour of its memory reference and
    /// mini-graph interior-load replays.
    fn latencies(&mut self, idx: usize) -> (u32, u32) {
        let e = &self.rob[idx];
        let op = &self.trace.ops[e.trace_idx];
        match e.kind {
            Kind::Alu | Kind::Control => (1, 1),
            Kind::Mul => (3, 3),
            Kind::Direct => (1, 1),
            Kind::Load => {
                let mem = op.mem.expect("load has a memory reference");
                let res = self.mem.data(mem.addr, self.now);
                let lat = 1 + res.latency;
                (lat, lat)
            }
            Kind::Store => (1, 1), // agen only; data written at commit
            Kind::Handle => {
                let inst = &self.prog.insts[e.sidx as usize];
                let mgid = inst.mgid().expect("handle has MGID");
                let sched = self.mgt.get(mgid).expect("MGT entry exists");
                let mut out = sched.out_latency.unwrap_or(sched.total_latency);
                let mut total = sched.total_latency;
                if let Some(mem) = op.mem {
                    if !mem.store {
                        // Locate the load slot to learn its scheduled cycle.
                        let load_slot = sched
                            .slots
                            .iter()
                            .position(|s| s.fu == Some(FuReq::LoadPort))
                            .expect("load-bearing handle has a load slot");
                        let slot_cycle = sched.slots[load_slot].cycle;
                        let hit_lat = self.cfg.load_hit_latency();
                        let res = self.mem.data(mem.addr, self.now + slot_cycle as u64);
                        let actual = 1 + res.latency;
                        if actual > hit_lat {
                            let extra = actual - hit_lat;
                            if load_slot + 1 == sched.slots.len() {
                                // Terminal load: behaves like a singleton miss.
                                total += extra;
                                if sched.out_latency.is_none()
                                    || sched.out_latency == Some(sched.total_latency)
                                {
                                    out += extra;
                                }
                            } else {
                                // Interior load: the pre-scheduled MGST
                                // sequence ran with the wrong data — the
                                // entire mini-graph replays once the line
                                // arrives (paper §4.3).
                                self.stats.mg_replays += 1;
                                let data_at = slot_cycle + actual;
                                total = data_at + sched.total_latency;
                                out = data_at + sched.out_latency.unwrap_or(sched.total_latency);
                            }
                        }
                    }
                }
                (out, total)
            }
        }
    }

    /// Records executed memory addresses and performs violation detection.
    fn issue_memory_effects(&mut self, idx: usize) {
        let e = &self.rob[idx];
        let seq = e.seq;
        let trace_idx = e.trace_idx;
        let pc = self.prog.byte_addr(e.sidx as usize);
        let Some(mem) = self.trace.ops[trace_idx].mem else { return };
        if mem.store {
            if let Some(s) = self.sq.iter_mut().find(|s| s.seq == seq) {
                s.addr = mem.addr;
                s.width = mem.width;
                s.executed = true;
            }
            // A later load must not have run already: memory-ordering
            // violation — squash from the offending load and refetch.
            let victim = self
                .lq
                .iter()
                .filter(|l| l.seq > seq && l.executed && overlap(l.addr, l.width, mem.addr, mem.width))
                .map(|l| (l.seq, l.pc, l.trace_idx))
                .min();
            if let Some((vseq, vpc, vtrace)) = victim {
                self.stats.violations += 1;
                self.storesets.violation(vpc, pc);
                self.squash_from(vseq, vtrace);
            }
        } else if let Some(l) = self.lq.iter_mut().find(|l| l.seq == seq) {
            l.addr = mem.addr;
            l.width = mem.width;
            l.executed = true;
        }
    }

    /// Squashes all operations with sequence ≥ `seq` and restarts fetch at
    /// trace position `trace_idx`.
    fn squash_from(&mut self, seq: u64, trace_idx: usize) {
        while let Some(back) = self.rob.back() {
            if back.seq < seq {
                break;
            }
            let e = self.rob.pop_back().expect("back exists");
            if e.in_iq {
                self.iq_used -= 1;
            }
            if let Some((r, renamed)) = e.dest {
                self.renamer.undo(r, renamed);
            }
            if e.is_load {
                self.lq.pop_back();
            }
            if e.is_store {
                let s = self.sq.pop_back().expect("store has an SQ entry");
                self.storesets.retire_store(s.pc, s.seq);
            }
        }
        self.frontq.clear();
        self.fetch_ptr = trace_idx;
        self.fetch_resume_at = self.now + 1;
        if let Some(b) = self.fetch_blocked_on {
            if b >= trace_idx {
                self.fetch_blocked_on = None;
            }
        }
    }

    // --------------------------------------------------------- dispatch --
    fn dispatch(&mut self) {
        let mut n = 0;
        while n < self.cfg.front_width {
            let Some(front) = self.frontq.front() else { break };
            if front.ready_at > self.now {
                break;
            }
            let trace_idx = front.trace_idx;
            let mispredicted = front.mispredicted;
            let pred_taken = front.pred_taken;
            let pred_token = front.pred_token;
            let op = self.trace.ops[trace_idx];
            let inst = &self.prog.insts[op.sidx as usize];
            let kind = match inst.op.class() {
                OpClass::IntAlu => Kind::Alu,
                OpClass::IntMul => Kind::Mul,
                OpClass::Load => Kind::Load,
                OpClass::Store => Kind::Store,
                OpClass::CondBranch | OpClass::UncondBranch | OpClass::Jump => Kind::Control,
                OpClass::Handle => Kind::Handle,
                OpClass::Nop | OpClass::Pad | OpClass::Halt => Kind::Direct,
            };
            let is_load = op.mem.map(|m| !m.store).unwrap_or(false);
            let is_store = op.mem.map(|m| m.store).unwrap_or(false);

            // Structural resources.
            if self.rob.len() >= self.cfg.rob_size {
                self.stats.stall_rob += 1;
                break;
            }
            let needs_iq = kind != Kind::Direct;
            if needs_iq && self.iq_used >= self.cfg.iq_size {
                self.stats.stall_iq += 1;
                break;
            }
            if (is_load && self.lq.len() >= self.cfg.lq_size)
                || (is_store && self.sq.len() >= self.cfg.sq_size)
            {
                self.stats.stall_lsq += 1;
                break;
            }
            let arch_dest = inst.dest_reg();
            if arch_dest.is_some() && self.renamer.free_count() == 0 {
                self.stats.stall_pregs += 1;
                break;
            }

            // Rename.
            let srcs = inst.src_regs().map(|s| s.map(|r| self.renamer.lookup(r)));
            let dest = arch_dest.map(|r| {
                let renamed = self.renamer.rename_dest(r).expect("free list checked above");
                self.preg_ready[renamed.preg as usize] = u64::MAX;
                (r, renamed)
            });

            let seq = self.next_seq;
            self.next_seq += 1;
            let pc = self.prog.byte_addr(op.sidx as usize);

            // Store sets participate via handle PCs for embedded memory ops.
            let mut wait_store = None;
            if is_load {
                wait_store = self.storesets.dispatch_load(pc);
                self.lq.push_back(LqEntry {
                    seq,
                    pc,
                    addr: 0,
                    width: 0,
                    executed: false,
                    trace_idx,
                });
            }
            if is_store {
                self.storesets.dispatch_store(pc, seq);
                self.sq.push_back(SqEntry { seq, pc, addr: 0, width: 0, executed: false });
            }

            let represents = match kind {
                Kind::Handle => {
                    let mgid = inst.mgid().expect("handle has MGID");
                    self.mgt
                        .get(mgid)
                        .expect("handle refers to a packed MGT entry")
                        .slots
                        .len() as u32
                }
                _ => 1,
            };
            let completed = kind == Kind::Direct;
            if needs_iq {
                self.iq_used += 1;
            }
            if op.br.is_some() {
                self.stats.branches += 1;
            }
            self.rob.push_back(RobEntry {
                seq,
                trace_idx,
                sidx: op.sidx,
                kind,
                represents,
                dest,
                srcs,
                in_iq: needs_iq,
                issued: !needs_iq,
                completed,
                mispredicted,
                pred_taken,
                pred_token,
                wait_store,
                is_store,
                is_load,
            });
            self.frontq.pop_front();
            n += 1;
        }
    }

    // ------------------------------------------------------------ fetch --
    fn fetch(&mut self, limit: usize) {
        if self.now < self.fetch_resume_at || self.fetch_blocked_on.is_some() {
            return;
        }
        let qcap = (self.cfg.front_width * self.cfg.frontend_depth) as usize;
        let line_bytes = self.cfg.il1.2 as u64;
        let mut fetched = 0;
        let mut lines_touched = 0u32;
        let mut last_line: Option<u64> = None;

        while fetched < self.cfg.front_width
            && self.frontq.len() < qcap
            && self.fetch_ptr < limit
        {
            let op = self.trace.ops[self.fetch_ptr];
            let addr = self.prog.byte_addr(op.sidx as usize);
            let line = addr / line_bytes;
            if last_line != Some(line) {
                if lines_touched >= MAX_FETCH_LINES {
                    break;
                }
                let res = self.mem.fetch(addr, self.now);
                lines_touched += 1;
                last_line = Some(line);
                if res.l1_miss {
                    // Stall fetch until the line arrives.
                    self.fetch_resume_at = self.now + res.latency as u64;
                    break;
                }
            }

            let inst = &self.prog.insts[op.sidx as usize];
            let (mispredicted, pred_taken, pred_token) = self.predict(inst, addr, &op);
            self.frontq.push_back(FrontOp {
                trace_idx: self.fetch_ptr,
                ready_at: self.now + self.cfg.frontend_depth as u64,
                mispredicted,
                pred_taken,
                pred_token,
            });
            let taken = op.br.map(|b| b.taken).unwrap_or(false);
            self.fetch_ptr += 1;
            fetched += 1;
            if mispredicted {
                self.fetch_blocked_on = Some(self.fetch_ptr - 1);
                break;
            }
            if taken {
                break; // redirect: fetch resumes at the target next cycle
            }
        }
    }

    /// Predicts a control transfer at fetch. Returns
    /// `(mispredicted, predicted_taken, prediction_token)`.
    fn predict(
        &mut self,
        inst: &mg_isa::Inst,
        pc: u64,
        op: &mg_profile::DynOp,
    ) -> (bool, bool, u32) {
        let Some(br) = op.br else { return (false, false, 0) };
        let actual_target = self.prog.byte_addr(br.target);
        match inst.op.class() {
            // The handle PC stands in for the embedded branch's PC for
            // prediction and update (paper §4.1).
            OpClass::CondBranch | OpClass::Handle => {
                let (pred, token) = self.bpred.predict_and_speculate(pc);
                let target_ok = !br.taken || self.btb.lookup(pc) == Some(actual_target);
                (pred != br.taken || (br.taken && !target_ok), pred, token)
            }
            OpClass::UncondBranch => {
                if inst.op == Opcode::Bsr {
                    // Return address is the next sequential instruction.
                    self.ras.push(pc + mg_isa::program::INST_BYTES);
                }
                let hit = self.btb.lookup(pc) == Some(actual_target);
                (!hit, true, 0)
            }
            OpClass::Jump => match inst.op {
                Opcode::Ret => {
                    let pred = self.ras.pop();
                    (pred != Some(actual_target), true, 0)
                }
                Opcode::Jsr => {
                    self.ras.push(pc + mg_isa::program::INST_BYTES);
                    let hit = self.btb.lookup(pc) == Some(actual_target);
                    (!hit, true, 0)
                }
                _ => {
                    let hit = self.btb.lookup(pc) == Some(actual_target);
                    (!hit, true, 0)
                }
            },
            _ => (false, false, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{reg, Asm, Memory};
    use mg_profile::record_trace;

    /// A hot loop whose body is `body(asm)`, executed `iters` times; the
    /// counter lives in r30. Loops keep the instruction cache warm, as the
    /// paper's benchmarks do.
    fn loop_trace(iters: i64, body: impl Fn(&mut Asm)) -> (Program, Trace) {
        let mut a = Asm::new();
        a.li(reg(30), iters);
        a.label("top");
        body(&mut a);
        a.subq(reg(30), 1, reg(30));
        a.bne(reg(30), "top");
        a.halt();
        let p = a.finish().unwrap();
        let t = record_trace(&p, &mut Memory::new(), None, 10_000_000).unwrap();
        (p, t)
    }

    fn run_baseline(p: &Program, t: &Trace) -> SimStats {
        Simulator::new(SimConfig::baseline(), p, t, &HandleCatalog::new()).run()
    }

    #[test]
    fn independent_ops_reach_alu_limit() {
        // 24 independent adds per iteration across 12 rotating registers.
        let (p, t) = loop_trace(400, |a| {
            for i in 0..24 {
                let r = reg((i % 12 + 1) as u8);
                a.addq(r, 1, r);
            }
        });
        let stats = run_baseline(&p, &t);
        let ipc = stats.ipc();
        assert!(ipc > 3.0, "expected near-4 IPC, got {ipc:.2}");
        assert!(ipc <= 4.05, "cannot exceed ALU bandwidth, got {ipc:.2}");
    }

    #[test]
    fn dependence_chain_serializes() {
        // 20 dependent adds per iteration: the r1 chain dominates.
        let (p, t) = loop_trace(300, |a| {
            for _ in 0..20 {
                a.addq(reg(1), 1, reg(1));
            }
        });
        let stats = run_baseline(&p, &t);
        let ipc = stats.ipc();
        assert!(ipc < 1.3, "serial chain is ~1 IPC, got {ipc:.2}");
        assert!(ipc > 0.8, "serial chain should sustain ~1 IPC, got {ipc:.2}");
    }

    #[test]
    fn two_cycle_scheduler_halves_serial_throughput() {
        let (p, t) = loop_trace(300, |a| {
            for _ in 0..20 {
                a.addq(reg(1), 1, reg(1));
            }
        });
        let mut cfg = SimConfig::baseline();
        cfg.sched_loop = 2;
        let stats = Simulator::new(cfg, &p, &t, &HandleCatalog::new()).run();
        let ipc = stats.ipc();
        assert!(ipc < 0.75, "2-cycle scheduler: dependent ops every other cycle, got {ipc:.2}");
        assert!(ipc > 0.4, "got {ipc:.2}");
    }

    #[test]
    fn width_limits_ipc() {
        let (p, t) = loop_trace(400, |a| {
            for i in 0..24 {
                let r = reg((i % 12 + 1) as u8);
                a.addq(r, 1, r);
            }
        });
        let cfg = SimConfig::baseline().with_front_width(2);
        let stats = Simulator::new(cfg, &p, &t, &HandleCatalog::new()).run();
        assert!(stats.ipc() <= 2.05, "2-wide front end caps IPC, got {}", stats.ipc());
        assert!(stats.ipc() > 1.5, "2-wide should still flow, got {}", stats.ipc());
    }

    #[test]
    fn loads_bounded_by_load_ports() {
        // 16 independent hitting loads per iteration + 2 loop ops: the two
        // load ports bound throughput near 16/8 loads + overlap.
        let (p, t) = loop_trace(300, |a| {
            a.li(reg(2), 0x10_0000);
            for i in 0..16 {
                a.ldq(reg((i % 8 + 3) as u8), (i as i64) * 8, reg(2));
            }
        });
        let stats = run_baseline(&p, &t);
        // 19 insts per iteration, loads limited to 2/cycle => >= 8 cycles.
        let ipc = stats.ipc();
        assert!(ipc <= 19.0 / 8.0 + 0.1, "load ports cap IPC, got {ipc:.2}");
        assert!(ipc > 1.5, "independent hitting loads should flow, got {ipc:.2}");
        assert!(stats.dl1_miss_rate() < 0.05);
    }

    #[test]
    fn pointer_chase_is_memory_bound() {
        // A dependent load chain with a 4KB stride: every load misses L1.
        let mut a = Asm::new();
        a.li(reg(1), 0x40_0000);
        a.li(reg(30), 40);
        a.label("top");
        for _ in 0..8 {
            a.ldq(reg(1), 0, reg(1));
        }
        a.subq(reg(30), 1, reg(30));
        a.bne(reg(30), "top");
        a.halt();
        let p = a.finish().unwrap();
        let mut mem = Memory::new();
        let mut addr = 0x40_0000u64;
        for _ in 0..400 {
            mem.write_u64(addr, addr + 4096);
            addr += 4096;
        }
        let t = record_trace(&p, &mut mem, None, 1_000_000).unwrap();
        let stats = run_baseline(&p, &t);
        assert!(
            stats.ipc() < 0.2,
            "serialized misses should crawl (mcf-like), got {}",
            stats.ipc()
        );
        assert!(stats.dl1_miss_rate() > 0.8);
    }

    #[test]
    fn branch_heavy_code_pays_mispredictions() {
        // Data-dependent unpredictable branches from a simple LCG.
        let mut a = Asm::new();
        a.li(reg(1), 12345);
        a.li(reg(4), 0);
        a.li(reg(5), 400);
        a.label("top");
        a.mulq(reg(1), 1103515245, reg(1));
        a.addq(reg(1), 12345, reg(1));
        a.srl(reg(1), 16, reg(2));
        a.and(reg(2), 1, reg(2));
        a.beq(reg(2), "skip");
        a.addq(reg(4), 1, reg(4));
        a.label("skip");
        a.addq(reg(5), -1, reg(5));
        a.bne(reg(5), "top");
        a.halt();
        let p = a.finish().unwrap();
        let t = record_trace(&p, &mut Memory::new(), None, 1_000_000).unwrap();
        let stats = run_baseline(&p, &t);
        assert!(stats.mispredict_rate() > 0.05, "random branch must mispredict");
        assert!(stats.ipc() < 3.0);
    }

    #[test]
    fn narrower_machine_is_never_faster() {
        let (p, t) = loop_trace(200, |a| {
            for i in 0..12 {
                let r = reg((i % 6 + 1) as u8);
                a.addq(r, 1, r);
                a.xor(r, 3, r);
            }
        });
        let six = run_baseline(&p, &t);
        let four = Simulator::new(
            SimConfig::baseline().with_front_width(4),
            &p,
            &t,
            &HandleCatalog::new(),
        )
        .run();
        assert!(four.cycles >= six.cycles);
    }

    #[test]
    fn fewer_pregs_never_faster() {
        let (p, t) = loop_trace(200, |a| {
            for i in 0..16 {
                let r = reg((i % 8 + 1) as u8);
                a.addq(r, 1, r);
            }
        });
        let full = run_baseline(&p, &t);
        let small = Simulator::new(
            SimConfig::baseline().with_phys_regs(104),
            &p,
            &t,
            &HandleCatalog::new(),
        )
        .run();
        assert!(small.cycles >= full.cycles);
    }

    #[test]
    fn determinism() {
        let (p, t) = loop_trace(100, |a| {
            a.addq(reg(1), 1, reg(1));
        });
        let s1 = run_baseline(&p, &t);
        let s2 = run_baseline(&p, &t);
        assert_eq!(s1.cycles, s2.cycles);
        assert_eq!(s1.insts, s2.insts);
    }
}
