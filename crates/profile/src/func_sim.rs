//! Convenience wrappers around functional execution.

use mg_isa::exec::{run_to_halt, CpuState, ExecError};
use mg_isa::{HandleCatalog, Memory, Program};

/// The result of a complete functional run.
#[derive(Clone, Debug)]
pub struct FuncResult {
    /// Final architectural state.
    pub cpu: CpuState,
    /// Number of original program instructions executed (handles count as
    /// their template length).
    pub insts: u64,
}

/// Runs `prog` to `halt` on a fresh CPU, against the given memory.
///
/// # Errors
///
/// Propagates functional-execution errors, including
/// [`ExecError::StepLimit`] if the program does not halt within
/// `max_steps` fetched instructions.
pub fn run_program(
    prog: &Program,
    mem: &mut Memory,
    catalog: Option<&HandleCatalog>,
    max_steps: u64,
) -> Result<FuncResult, ExecError> {
    let mut cpu = CpuState::new(prog.entry);
    let insts = run_to_halt(prog, &mut cpu, mem, catalog, max_steps)?;
    Ok(FuncResult { cpu, insts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{reg, Asm};

    #[test]
    fn run_program_reports_inst_count() {
        let mut a = Asm::new();
        a.li(reg(1), 2);
        a.addq(reg(1), 1, reg(1));
        a.halt();
        let p = a.finish().unwrap();
        let r = run_program(&p, &mut Memory::new(), None, 100).unwrap();
        assert_eq!(r.insts, 3);
        assert_eq!(r.cpu.regs[1], 3);
    }

    #[test]
    fn non_halting_program_errors() {
        let mut a = Asm::new();
        a.label("spin");
        a.br("spin");
        let p = a.finish().unwrap();
        let err = run_program(&p, &mut Memory::new(), None, 5).unwrap_err();
        assert!(matches!(err, ExecError::StepLimit(5)));
    }
}
