//! Dominator-tree construction over a [`Cfg`].
//!
//! Implements the iterative algorithm of Cooper, Harvey & Kennedy ("A
//! Simple, Fast Dominance Algorithm"): immediate dominators are computed
//! by intersecting predecessor dominators over a reverse-postorder walk
//! until a fixed point. The CFG sizes here (workload kernels, compiled
//! `mgl.*` programs) are tens of blocks, so the simple algorithm's
//! near-linear behaviour is more than enough.
//!
//! Blocks not reachable from the entry block over *static* successor
//! edges ([`Cfg::successors`] — indirect jumps contribute none) have no
//! dominator information; [`Dominators::is_reachable`] reports them and
//! every query on them answers conservatively (`idom` = `None`,
//! `dominates` = `false`).

use crate::cfg::Cfg;

/// The dominator tree of a [`Cfg`], rooted at its entry block.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// Immediate dominator per block; `idom[entry] == entry`, and
    /// `u32::MAX` marks a block unreachable from the entry.
    idom: Vec<u32>,
    /// Reverse-postorder sequence of reachable blocks.
    rpo: Vec<u32>,
    /// Position of each block in `rpo` (`u32::MAX` if unreachable).
    rpo_pos: Vec<u32>,
}

const UNREACHABLE: u32 = u32::MAX;

impl Dominators {
    /// Computes the dominator tree of `cfg`.
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.blocks.len();
        if n == 0 {
            return Dominators { idom: Vec::new(), rpo: Vec::new(), rpo_pos: Vec::new() };
        }
        let entry = cfg.entry_block() as u32;

        // Depth-first postorder from the entry, then reverse it.
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut postorder: Vec<u32> = Vec::with_capacity(n);
        let mut stack: Vec<(u32, usize)> = vec![(entry, 0)];
        state[entry as usize] = 1;
        while let Some((b, next)) = stack.last_mut() {
            let b = *b;
            let succs = cfg.successors(b as usize);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if state[s as usize] == 0 {
                    state[s as usize] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b as usize] = 2;
                postorder.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<u32> = postorder.iter().rev().copied().collect();
        let mut rpo_pos = vec![UNREACHABLE; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b as usize] = i as u32;
        }

        // Predecessor lists restricted to reachable blocks.
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &b in &rpo {
            for &s in cfg.successors(b as usize) {
                if rpo_pos[s as usize] != UNREACHABLE {
                    preds[s as usize].push(b);
                }
            }
        }

        // Cooper-Harvey-Kennedy fixed point.
        let mut idom = vec![UNREACHABLE; n];
        idom[entry as usize] = entry;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = UNREACHABLE;
                for &p in &preds[b as usize] {
                    if idom[p as usize] == UNREACHABLE {
                        continue; // not yet processed this round
                    }
                    new_idom = if new_idom == UNREACHABLE {
                        p
                    } else {
                        intersect(&idom, &rpo_pos, &rpo, new_idom, p)
                    };
                }
                if new_idom != UNREACHABLE && idom[b as usize] != new_idom {
                    idom[b as usize] = new_idom;
                    changed = true;
                }
            }
        }

        Dominators { idom, rpo, rpo_pos }
    }

    /// Whether `block` is reachable from the entry over static edges.
    pub fn is_reachable(&self, block: usize) -> bool {
        self.rpo_pos.get(block).is_some_and(|&p| p != UNREACHABLE)
    }

    /// The immediate dominator of `block`; `None` for the entry block and
    /// for unreachable blocks.
    pub fn idom(&self, block: usize) -> Option<usize> {
        let d = *self.idom.get(block)?;
        if d == UNREACHABLE || d as usize == block {
            None
        } else {
            Some(d as usize)
        }
    }

    /// Whether block `a` dominates block `b` (reflexively). Unreachable
    /// blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// The reachable blocks in reverse postorder (entry first).
    pub fn reverse_postorder(&self) -> &[u32] {
        &self.rpo
    }
}

/// Walks two dominator-tree paths up to their common ancestor, comparing
/// by reverse-postorder position (the CHK `intersect` primitive).
fn intersect(idom: &[u32], rpo_pos: &[u32], rpo: &[u32], a: u32, b: u32) -> u32 {
    let (mut fa, mut fb) = (rpo_pos[a as usize], rpo_pos[b as usize]);
    while fa != fb {
        while fa > fb {
            fa = rpo_pos[idom[rpo[fa as usize] as usize] as usize];
        }
        while fb > fa {
            fb = rpo_pos[idom[rpo[fb as usize] as usize] as usize];
        }
    }
    rpo[fa as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use mg_isa::{reg, Asm};

    #[test]
    fn diamond_dominance() {
        // 0: entry branches over 1 to 2; both join at 3.
        let mut a = Asm::new();
        a.li(reg(1), 1); // block 0
        a.bne(reg(1), "right");
        a.addq(reg(2), 1, reg(2)); // block 1 (left)
        a.br("join");
        a.label("right");
        a.addq(reg(3), 1, reg(3)); // block 2 (right)
        a.label("join");
        a.halt(); // block 3
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        assert_eq!(cfg.blocks.len(), 4);
        let dom = Dominators::compute(&cfg);
        // Entry dominates everything; neither arm dominates the join.
        for b in 0..4 {
            assert!(dom.dominates(0, b), "entry must dominate block {b}");
        }
        assert!(!dom.dominates(1, 3));
        assert!(!dom.dominates(2, 3));
        assert_eq!(dom.idom(3), Some(0));
        assert_eq!(dom.idom(0), None);
    }

    #[test]
    fn loop_header_dominates_body() {
        let mut a = Asm::new();
        a.li(reg(1), 4); // block 0
        a.label("top");
        a.subq(reg(1), 1, reg(1)); // block 1
        a.bne(reg(1), "top");
        a.halt(); // block 2
        let p = a.finish().unwrap();
        let dom = Dominators::compute(&build_cfg(&p));
        assert!(dom.dominates(1, 1));
        assert!(dom.dominates(0, 2));
        assert_eq!(dom.idom(2), Some(1));
    }

    #[test]
    fn empty_cfg_is_fine() {
        let dom = Dominators::compute(&Cfg::default());
        assert!(!dom.is_reachable(0));
        assert!(dom.reverse_postorder().is_empty());
    }
}
