//! Basic-block frequency profiling (the input to mini-graph selection).

use crate::cfg::{BasicBlock, Cfg};
use mg_isa::exec::{step, CpuState, ExecError};
use mg_isa::{HandleCatalog, Memory, Program};

/// Per-instruction and per-block execution frequencies gathered by
/// functional simulation.
///
/// The paper derives a mini-graph's execution frequency `f` "from a
/// basic-block frequency profile" (§3.2); [`BlockProfile::block_count`]
/// provides exactly that quantity.
#[derive(Clone, Debug)]
pub struct BlockProfile {
    /// Execution count of each static instruction.
    pub inst_counts: Vec<u64>,
    /// Total dynamic instructions executed.
    pub total: u64,
}

impl BlockProfile {
    /// Execution frequency of a basic block (count of its first
    /// instruction).
    pub fn block_count(&self, block: &BasicBlock) -> u64 {
        self.inst_counts.get(block.start).copied().unwrap_or(0)
    }

    /// Execution frequencies of every block of `cfg`.
    pub fn block_counts(&self, cfg: &Cfg) -> Vec<u64> {
        cfg.blocks.iter().map(|b| self.block_count(b)).collect()
    }
}

/// Functionally executes `prog` to halt, recording per-instruction
/// execution counts.
///
/// # Errors
///
/// Propagates functional-execution errors; [`ExecError::StepLimit`] if the
/// program does not halt within `max_steps`.
pub fn profile_program(
    prog: &Program,
    mem: &mut Memory,
    catalog: Option<&HandleCatalog>,
    max_steps: u64,
) -> Result<BlockProfile, ExecError> {
    let mut cpu = CpuState::new(prog.entry);
    let mut inst_counts = vec![0u64; prog.len()];
    let mut total = 0u64;
    for _ in 0..max_steps {
        let pc = cpu.pc;
        let info = step(prog, &mut cpu, mem, catalog)?;
        inst_counts[pc] += 1;
        total += info.represents as u64;
        if info.halted {
            return Ok(BlockProfile { inst_counts, total });
        }
    }
    Err(ExecError::StepLimit(max_steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use mg_isa::{reg, Asm};

    #[test]
    fn loop_counts() {
        let mut a = Asm::new();
        a.li(reg(1), 7); // block 0
        a.label("top"); // block 1
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "top");
        a.halt(); // block 2
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let prof = profile_program(&p, &mut Memory::new(), None, 1000).unwrap();
        assert_eq!(prof.block_counts(&cfg), vec![1, 7, 1]);
        assert_eq!(prof.total, 1 + 7 * 2 + 1);
    }

    #[test]
    fn conditional_skew() {
        // Taken path executes 3 times out of 4 iterations.
        let mut a = Asm::new();
        a.li(reg(1), 4);
        a.label("top");
        a.and(reg(1), 3, reg(2));
        a.beq(reg(2), "skip"); // taken only when r1 % 4 == 0
        a.addq(reg(3), 1, reg(3));
        a.label("skip");
        a.subq(reg(1), 1, reg(1));
        a.bne(reg(1), "top");
        a.halt();
        let p = a.finish().unwrap();
        let prof = profile_program(&p, &mut Memory::new(), None, 1000).unwrap();
        let cfg = build_cfg(&p);
        // Block containing the addq executes 3 times (r1 = 3, 2, 1).
        let addq_idx = 3;
        let blk = cfg.block_of(addq_idx).unwrap();
        assert_eq!(prof.block_count(blk), 3);
    }
}
