//! Static basic-block construction.

use mg_isa::{OpClass, Program};

/// A basic block: the half-open instruction index range `[start, end)`.
///
/// Blocks are maximal single-entry single-exit straight-line regions; they
/// are the scope within which mini-graphs may be formed (atomicity, paper
/// §3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the block is empty (never true for constructed CFGs).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Iterates over the instruction indices of the block.
    pub fn indices(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

/// The control-flow graph of a program: its basic-block partition plus
/// static successor edges. Extraction itself only needs block boundaries
/// and frequencies; the successor edges feed the dominator/loop analyses
/// in [`crate::dominators`] and [`crate::loops`] (which in turn drive the
/// loop-aware selection policies).
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    /// Blocks ordered by start index; they partition `0..program.len()`.
    pub blocks: Vec<BasicBlock>,
    /// Map from instruction index to the index of its containing block.
    block_of: Vec<u32>,
    /// Static successor block indices per block (deduplicated, ascending).
    /// Indirect jumps contribute no edges — see [`build_cfg`].
    succ: Vec<Vec<u32>>,
    /// Index of the block containing the program entry instruction.
    entry: u32,
}

impl Cfg {
    /// The block with the given index.
    pub fn block_at(&self, index: usize) -> Option<&BasicBlock> {
        self.blocks.get(index)
    }

    /// The block containing instruction `inst_index`.
    pub fn block_of(&self, inst_index: usize) -> Option<&BasicBlock> {
        let b = *self.block_of.get(inst_index)?;
        self.blocks.get(b as usize)
    }

    /// The index of the block containing instruction `inst_index`.
    pub fn block_index_of(&self, inst_index: usize) -> Option<usize> {
        self.block_of.get(inst_index).map(|&b| b as usize)
    }

    /// Static successor block indices of block `index` (deduplicated,
    /// ascending). Blocks ending in an indirect jump have no static
    /// successors; their dynamic targets are invisible to this graph.
    pub fn successors(&self, index: usize) -> &[u32] {
        self.succ.get(index).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The index of the block containing the program entry instruction
    /// (0 for an empty CFG).
    pub fn entry_block(&self) -> usize {
        self.entry as usize
    }
}

/// Whether an instruction terminates a basic block.
fn ends_block(prog: &Program, idx: usize) -> bool {
    let inst = &prog.insts[idx];
    match inst.op.class() {
        OpClass::CondBranch | OpClass::UncondBranch | OpClass::Jump | OpClass::Halt => true,
        // A handle whose mini-graph ends in a branch transfers control.
        OpClass::Handle => inst.handle_branch_target().is_some(),
        _ => false,
    }
}

/// Builds the basic-block partition of `prog`, with successor edges.
///
/// Leaders are: the entry instruction, every direct branch target, and
/// every instruction following a control transfer (or halt). Indirect jump
/// targets are not statically known; the instruction *after* a jump is a
/// leader, and in the workloads used here indirect-call/return targets
/// always coincide with label boundaries that are also reached by direct
/// references.
///
/// Successor edges are the statically evident ones: the taken target of a
/// direct (or handle-embedded) branch, and the fall-through edge of every
/// block not ending in an unconditional transfer. Blocks ending in an
/// indirect jump get **no** successor edges — the analyses built on this
/// graph ([`crate::dominators`], [`crate::loops`]) treat blocks reachable
/// only through indirect control as unreachable, which under-approximates
/// loop nesting (depth 0) instead of fabricating spurious loops.
pub fn build_cfg(prog: &Program) -> Cfg {
    let n = prog.insts.len();
    if n == 0 {
        return Cfg::default();
    }
    let mut leader = vec![false; n];
    leader[prog.entry.min(n - 1)] = true;
    leader[0] = true;
    for (i, inst) in prog.insts.iter().enumerate() {
        if let Some(t) = inst.static_target() {
            if t < n {
                leader[t] = true;
            }
        }
        if let Some(t) = inst.handle_branch_target() {
            if t < n {
                leader[t] = true;
            }
        }
        if ends_block(prog, i) && i + 1 < n {
            leader[i + 1] = true;
        }
    }
    // Labels are potential targets of indirect control; make them leaders so
    // jump/return targets never land mid-block.
    for &idx in prog.labels.values() {
        if idx < n {
            leader[idx] = true;
        }
    }

    let mut blocks = Vec::new();
    let mut block_of = vec![0u32; n];
    let mut start = 0usize;
    for i in 0..n {
        let last = i + 1 == n || leader[i + 1] || ends_block(prog, i);
        if last {
            let b = blocks.len() as u32;
            blocks.push(BasicBlock { start, end: i + 1 });
            block_of[start..=i].fill(b);
            start = i + 1;
        }
    }

    let mut succ: Vec<Vec<u32>> = Vec::with_capacity(blocks.len());
    for b in &blocks {
        let term = b.end - 1;
        let inst = &prog.insts[term];
        let mut out = Vec::new();
        let class = inst.op.class();
        let taken = match class {
            OpClass::Handle => inst.handle_branch_target(),
            _ => inst.static_target(),
        };
        if let Some(t) = taken {
            if t < n {
                out.push(block_of[t]);
            }
        }
        let falls_through =
            !matches!(class, OpClass::UncondBranch | OpClass::Jump | OpClass::Halt);
        if falls_through && b.end < n {
            out.push(block_of[b.end]);
        }
        out.sort_unstable();
        out.dedup();
        succ.push(out);
    }

    let entry = block_of[prog.entry.min(n - 1)];
    Cfg { blocks, block_of, succ, entry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{reg, Asm};

    fn loop_program() -> Program {
        let mut a = Asm::new();
        a.li(reg(1), 4); // 0
        a.label("top");
        a.subq(reg(1), 1, reg(1)); // 1
        a.bne(reg(1), "top"); // 2
        a.halt(); // 3
        a.finish().unwrap()
    }

    #[test]
    fn blocks_partition_program() {
        let p = loop_program();
        let cfg = build_cfg(&p);
        assert_eq!(cfg.blocks.len(), 3);
        assert_eq!(cfg.blocks[0], BasicBlock { start: 0, end: 1 });
        assert_eq!(cfg.blocks[1], BasicBlock { start: 1, end: 3 });
        assert_eq!(cfg.blocks[2], BasicBlock { start: 3, end: 4 });
        let covered: usize = cfg.blocks.iter().map(BasicBlock::len).sum();
        assert_eq!(covered, p.len());
    }

    #[test]
    fn block_of_lookup() {
        let p = loop_program();
        let cfg = build_cfg(&p);
        assert_eq!(cfg.block_index_of(0), Some(0));
        assert_eq!(cfg.block_index_of(1), Some(1));
        assert_eq!(cfg.block_index_of(2), Some(1));
        assert_eq!(cfg.block_index_of(3), Some(2));
        assert_eq!(cfg.block_index_of(4), None);
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut a = Asm::new();
        a.li(reg(1), 1);
        a.addq(reg(1), 1, reg(1));
        a.halt();
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0].len(), 3);
    }

    #[test]
    fn empty_program() {
        let p = Program::default();
        let cfg = build_cfg(&p);
        assert!(cfg.blocks.is_empty());
    }

    #[test]
    fn successor_edges_cover_branch_and_fallthrough() {
        let p = loop_program();
        let cfg = build_cfg(&p);
        // Block 0 (li) falls through to the loop body.
        assert_eq!(cfg.successors(0), &[1]);
        // Block 1 (subq; bne top) branches back to itself or falls to halt.
        assert_eq!(cfg.successors(1), &[1, 2]);
        // Block 2 (halt) has no successors.
        assert!(cfg.successors(2).is_empty());
        assert_eq!(cfg.entry_block(), 0);
        // Out of range is empty, not a panic.
        assert!(cfg.successors(99).is_empty());
    }

    #[test]
    fn labels_split_blocks() {
        let mut a = Asm::new();
        a.nop();
        a.label("entry2"); // label makes a leader even with no direct branch
        a.nop();
        a.halt();
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        assert_eq!(cfg.blocks.len(), 2);
    }
}
