//! Natural-loop detection and nesting depth over a [`Cfg`].
//!
//! A back edge is an edge `t -> h` whose target `h` dominates its source
//! `t` ([`Dominators::dominates`]); the natural loop of that edge is `h`
//! plus every block that reaches `t` without passing through `h`. Loops
//! sharing a header are merged (the classic normalization), and a block's
//! **nesting depth** is the number of distinct loop headers whose loop
//! contains it — 0 outside any loop, 1 in a top-level loop body, and so
//! on. The loop-aware selection policy weights mini-graph candidates by
//! this depth (`mg-policy::weighted`).

use crate::cfg::Cfg;
use crate::dominators::Dominators;

/// Loop-nesting structure of a [`Cfg`].
#[derive(Clone, Debug)]
pub struct LoopNest {
    /// Nesting depth per block (0 = not in any natural loop).
    depth: Vec<u32>,
    /// Block indices of the detected loop headers, ascending.
    headers: Vec<u32>,
}

impl LoopNest {
    /// Detects natural loops of `cfg` using its dominator tree.
    pub fn compute(cfg: &Cfg, dom: &Dominators) -> LoopNest {
        let n = cfg.blocks.len();
        let mut depth = vec![0u32; n];
        let mut headers: Vec<u32> = Vec::new();

        // Predecessor lists for the backward "reaches tail" walk.
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for b in 0..n {
            for &s in cfg.successors(b) {
                preds[s as usize].push(b as u32);
            }
        }

        // Collect back edges, grouped by header so loops sharing a header
        // count as one loop for nesting purposes.
        let mut tails_of: Vec<Vec<u32>> = vec![Vec::new(); n];
        for t in 0..n {
            for &h in cfg.successors(t) {
                if dom.dominates(h as usize, t) {
                    tails_of[h as usize].push(t as u32);
                }
            }
        }

        for h in 0..n {
            if tails_of[h].is_empty() {
                continue;
            }
            headers.push(h as u32);
            // Natural loop body: backward flood from every tail until the
            // header, which is excluded from the walk.
            let mut in_loop = vec![false; n];
            in_loop[h] = true;
            let mut work: Vec<u32> = Vec::new();
            for &t in &tails_of[h] {
                if !in_loop[t as usize] {
                    in_loop[t as usize] = true;
                    work.push(t);
                }
            }
            while let Some(b) = work.pop() {
                for &p in &preds[b as usize] {
                    if !in_loop[p as usize] {
                        in_loop[p as usize] = true;
                        work.push(p);
                    }
                }
            }
            for (b, inside) in in_loop.iter().enumerate() {
                if *inside {
                    depth[b] += 1;
                }
            }
        }

        LoopNest { depth, headers }
    }

    /// Loop-nesting depth of `block` (0 when outside every loop or out of
    /// range).
    pub fn depth(&self, block: usize) -> u32 {
        self.depth.get(block).copied().unwrap_or(0)
    }

    /// Block indices of the detected natural-loop headers, ascending.
    pub fn headers(&self) -> &[u32] {
        &self.headers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use mg_isa::{reg, Asm};

    #[test]
    fn single_loop_depth_one() {
        let mut a = Asm::new();
        a.li(reg(1), 4); // block 0
        a.label("top");
        a.subq(reg(1), 1, reg(1)); // block 1
        a.bne(reg(1), "top");
        a.halt(); // block 2
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let dom = Dominators::compute(&cfg);
        let nest = LoopNest::compute(&cfg, &dom);
        assert_eq!(nest.depth(0), 0);
        assert_eq!(nest.depth(1), 1);
        assert_eq!(nest.depth(2), 0);
        assert_eq!(nest.headers(), &[1]);
    }

    #[test]
    fn nested_loops_stack_depth() {
        // outer loop over r1, inner loop over r2.
        let mut a = Asm::new();
        a.li(reg(1), 3); // block: preheader
        a.label("outer");
        a.li(reg(2), 2); // outer body, sets up inner trip count
        a.label("inner");
        a.subq(reg(2), 1, reg(2));
        a.bne(reg(2), "inner");
        a.subq(reg(1), 1, reg(1)); // after inner
        a.bne(reg(1), "outer");
        a.halt();
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let dom = Dominators::compute(&cfg);
        let nest = LoopNest::compute(&cfg, &dom);
        let inner_block = cfg.block_index_of(p.labels["inner"]).unwrap();
        let outer_block = cfg.block_index_of(p.labels["outer"]).unwrap();
        assert_eq!(nest.depth(inner_block), 2, "inner body is doubly nested");
        assert_eq!(nest.depth(outer_block), 1, "outer body is singly nested");
        assert_eq!(nest.headers().len(), 2);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut a = Asm::new();
        a.li(reg(1), 1);
        a.halt();
        let p = a.finish().unwrap();
        let cfg = build_cfg(&p);
        let nest = LoopNest::compute(&cfg, &Dominators::compute(&cfg));
        assert!(nest.headers().is_empty());
        assert_eq!(nest.depth(0), 0);
    }
}
