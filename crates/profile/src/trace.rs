//! Dynamic instruction traces.
//!
//! The timing simulator in `mg-uarch` is trace-driven: a functional pass
//! produces the committed-path instruction stream with memory addresses and
//! branch outcomes, and the cycle-level model replays it against pipeline
//! and memory-system resources. This is the standard substitution for the
//! paper's execution-driven SimpleScalar setup (see `DESIGN.md` §2).

use mg_isa::exec::{step, BrRec, CpuState, ExecError, MemRef};
use mg_isa::wire::{Reader, Wire, WireError, Writer};
use mg_isa::{HandleCatalog, Memory, Program};

/// One committed-path fetched instruction (a singleton or a whole handle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynOp {
    /// Static instruction index into the traced program.
    pub sidx: u32,
    /// The (single) memory reference, if any.
    pub mem: Option<MemRef>,
    /// The control transfer, if any.
    pub br: Option<BrRec>,
}

/// A committed-path dynamic trace.
///
/// Storage is a boxed slice, not a `Vec`: traces are immutable once
/// recorded and replayed op-by-op in the simulator's hottest loop, so the
/// representation drops the spare-capacity word and guarantees the exact
/// allocation survives from recording to replay.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// The dynamic operations in commit order.
    pub ops: Box<[DynOp]>,
    /// Total original program instructions represented (handles count as
    /// their template length) — the numerator for IPC.
    pub insts: u64,
}

impl Trace {
    /// Number of fetched (dynamic) operations.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operation at `idx` (trace replay's inner-loop accessor).
    #[inline]
    pub fn op(&self, idx: usize) -> &DynOp {
        &self.ops[idx]
    }
}

impl Wire for DynOp {
    fn put(&self, w: &mut Writer) {
        w.u32(self.sidx);
        self.mem.put(w);
        self.br.put(w);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(DynOp { sidx: r.u32()?, mem: Wire::take(r)?, br: Wire::take(r)? })
    }
}

/// Byte serialization for the persistent artifact cache
/// (`mg-harness::prep_cache`): a length-prefixed op sequence followed by
/// the represented-instruction count. Cached traces are *prefixes* of the
/// committed path — the recording budget is part of the cache key, so a
/// quick-mode prefix is never confused with a full-length trace.
impl Wire for Trace {
    fn put(&self, w: &mut Writer) {
        w.u64(self.ops.len() as u64);
        for op in self.ops.iter() {
            op.put(w);
        }
        w.u64(self.insts);
    }
    fn take(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len()?;
        let mut ops = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            ops.push(DynOp::take(r)?);
        }
        Ok(Trace { ops: ops.into_boxed_slice(), insts: r.u64()? })
    }
}

/// Upper bound on the up-front `record_trace` reservation, in ops
/// (callers routinely pass huge step budgets as `max_ops`; reserving
/// beyond this would waste address space, and doubling takes over
/// harmlessly for genuinely longer traces).
const TRACE_RESERVE_CAP: u64 = 1 << 20;

/// Functionally executes `prog` to halt, recording the dynamic trace.
///
/// `max_ops` bounds the trace length; execution stops early (without error)
/// once the bound is reached, which is how long-running workloads are
/// sampled for timing simulation.
///
/// # Errors
///
/// Propagates functional-execution errors ([`ExecError`]).
pub fn record_trace(
    prog: &Program,
    mem: &mut Memory,
    catalog: Option<&HandleCatalog>,
    max_ops: u64,
) -> Result<Trace, ExecError> {
    let mut cpu = CpuState::new(prog.entry);
    let mut ops: Vec<DynOp> = Vec::with_capacity(max_ops.min(TRACE_RESERVE_CAP) as usize);
    let mut insts = 0u64;
    while (ops.len() as u64) < max_ops {
        let pc = cpu.pc;
        let info = step(prog, &mut cpu, mem, catalog)?;
        // Rewriter padding is squashed at fetch: it occupies code space (the
        // byte addresses of surviving instructions already reflect that) but
        // never enters the pipeline.
        if prog.insts[pc].op != mg_isa::Opcode::Pad {
            ops.push(DynOp { sidx: pc as u32, mem: info.mem, br: info.br });
        }
        insts += info.represents as u64;
        if info.halted {
            break;
        }
    }
    Ok(Trace { ops: ops.into_boxed_slice(), insts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mg_isa::{reg, Asm};

    #[test]
    fn trace_records_memory_and_branches() {
        let mut a = Asm::new();
        a.li(reg(1), 0x4000); // 0
        a.li(reg(2), 2); // 1
        a.label("top");
        a.stq(reg(2), 0, reg(1)); // 2
        a.ldq(reg(3), 0, reg(1)); // 3
        a.subq(reg(2), 1, reg(2)); // 4
        a.bne(reg(2), "top"); // 5
        a.halt(); // 6
        let p = a.finish().unwrap();
        let t = record_trace(&p, &mut Memory::new(), None, 1000).unwrap();
        // 2 setup + 2 iterations * 4 + halt.
        assert_eq!(t.len(), 2 + 2 * 4 + 1);
        assert_eq!(t.insts, t.len() as u64, "singletons represent themselves");
        let store = &t.ops[2];
        assert_eq!(store.mem.unwrap().addr, 0x4000);
        assert!(store.mem.unwrap().store);
        let load = &t.ops[3];
        assert!(!load.mem.unwrap().store);
        let b1 = &t.ops[5];
        assert!(b1.br.unwrap().taken);
        let b2 = &t.ops[9];
        assert!(!b2.br.unwrap().taken);
    }

    #[test]
    fn trace_round_trips_through_wire() {
        let mut a = Asm::new();
        a.li(reg(1), 0x4000);
        a.li(reg(2), 3);
        a.label("top");
        a.stq(reg(2), 0, reg(1));
        a.subq(reg(2), 1, reg(2));
        a.bne(reg(2), "top");
        a.halt();
        let p = a.finish().unwrap();
        let t = record_trace(&p, &mut Memory::new(), None, 1000).unwrap();
        let bytes = mg_isa::wire::to_bytes(&t);
        let back: Trace = mg_isa::wire::from_bytes(&bytes).unwrap();
        assert_eq!(back.ops, t.ops);
        assert_eq!(back.insts, t.insts);
        // A truncated file decodes to an error, never a shorter trace.
        assert!(mg_isa::wire::from_bytes::<Trace>(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn max_ops_truncates() {
        let mut a = Asm::new();
        a.label("spin");
        a.addq(reg(1), 1, reg(1));
        a.br("spin");
        let p = a.finish().unwrap();
        let t = record_trace(&p, &mut Memory::new(), None, 10).unwrap();
        assert_eq!(t.len(), 10);
    }
}
