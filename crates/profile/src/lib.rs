//! Functional simulation, control-flow graphs, basic-block frequency
//! profiles, and dynamic traces.
//!
//! The paper extracts mini-graphs "from basic block frequency profiles"
//! (§3.2) and evaluates with an execution-driven timing simulator. This
//! crate supplies the corresponding substrate:
//!
//! * [`Cfg`] — static basic blocks of a [`Program`](mg_isa::Program);
//! * [`BlockProfile`] — execution frequencies per block, obtained by
//!   functional simulation ([`profile_program`]);
//! * [`Trace`] — a dynamic instruction trace (memory addresses, branch
//!   outcomes) that drives the cycle-level timing model in `mg-uarch`;
//!   traces are handle-aware, so the *rewritten* program can be traced with
//!   its [`HandleCatalog`](mg_isa::HandleCatalog);
//! * [`Dominators`] / [`LoopNest`] — dominator-tree and natural-loop
//!   nesting analyses over the static successor edges of a [`Cfg`], the
//!   substrate for loop-aware selection policies (`mg-policy`).
//!
//! # Example
//!
//! ```
//! use mg_isa::{Asm, reg, Memory};
//! use mg_profile::{build_cfg, profile_program};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! a.li(reg(1), 4);
//! a.label("top");
//! a.subq(reg(1), 1, reg(1));
//! a.bne(reg(1), "top");
//! a.halt();
//! let p = a.finish()?;
//!
//! let cfg = build_cfg(&p);
//! assert_eq!(cfg.blocks.len(), 3); // prologue, loop body, halt
//!
//! let prof = profile_program(&p, &mut Memory::new(), None, 1_000)?;
//! let body = cfg.block_at(1).unwrap();
//! assert_eq!(prof.block_count(body), 4); // loop executes 4 times
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
pub mod cfg;
pub mod dominators;
pub mod func_sim;
pub mod loops;
pub mod profile;
pub mod trace;

pub use cfg::{build_cfg, BasicBlock, Cfg};
pub use dominators::Dominators;
pub use func_sim::{run_program, FuncResult};
pub use loops::LoopNest;
pub use profile::{profile_program, BlockProfile};
pub use trace::{record_trace, DynOp, Trace};
