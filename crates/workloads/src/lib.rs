//! Benchmark kernels in the toy ISA, grouped into the paper's four suites.
//!
//! The paper evaluates SPEC2000(int), MediaBench, CommBench, and MiBench
//! binaries compiled for Alpha. Those binaries, compilers, and inputs are
//! unavailable, so this crate provides 24 hand-written kernels that span
//! the same behavioural axes (see `DESIGN.md` §2):
//!
//! * **SPECint-like** — branchy, irregular, pointer-chasing, larger
//!   static footprints, low IPC (`mcf`-like pointer chase ≈ 0.3 IPC);
//! * **MediaBench-like** — regular arithmetic loops with long fuseable
//!   ALU chains, high IPC;
//! * **CommBench-like** — header/table processing, checksums, Galois
//!   arithmetic via table lookups;
//! * **MiBench-like** — embedded kernels (bit twiddling, CRC, hashing,
//!   dithering).
//!
//! Every kernel is parameterized by an [`Input`] (seed + scale), writes a
//! checksum to [`common::RESULT_ADDR`] before halting (so functional
//! correctness of rewritten images is checkable), and is registered in
//! [`all`].
//!
//! # Example
//!
//! ```
//! use mg_workloads::{all, Input, Suite};
//!
//! let workloads = all();
//! assert!(workloads.len() >= 24);
//! let crc = workloads.iter().find(|w| w.name == "crc32").unwrap();
//! assert_eq!(crc.suite, Suite::MiBench);
//! let (prog, mem) = crc.build(&Input::tiny());
//! assert!(!prog.is_empty());
//! let _ = mem;
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
pub mod comm;
pub mod common;
pub mod media;
pub mod mibench;
pub mod spec;

use mg_isa::{Memory, Program};
use std::fmt;

/// The benchmark suite a workload belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// SPEC2000 integer-like.
    SpecInt,
    /// MediaBench-like.
    MediaBench,
    /// CommBench-like.
    CommBench,
    /// MiBench-like.
    MiBench,
}

impl Suite {
    /// All suites, in the paper's presentation order.
    pub const ALL: [Suite; 4] =
        [Suite::SpecInt, Suite::MediaBench, Suite::CommBench, Suite::MiBench];
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::SpecInt => f.write_str("SPECint"),
            Suite::MediaBench => f.write_str("MediaBench"),
            Suite::CommBench => f.write_str("CommBench"),
            Suite::MiBench => f.write_str("MiBench"),
        }
    }
}

/// Workload input parameters: a data seed and a size scale.
///
/// The paper's robustness study (§6.1) trains mini-graph selection on one
/// input set and evaluates on another; use two different seeds for that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Input {
    /// Seed for input-data generation.
    pub seed: u64,
    /// Size multiplier (≥ 1); controls iteration counts and data sizes.
    pub scale: u32,
}

impl Input {
    /// The reference input (analogous to the paper's training inputs).
    pub fn reference() -> Input {
        Input { seed: 0x5eed_0001, scale: 4 }
    }

    /// An alternative input with different data (for the robustness study).
    pub fn alternative() -> Input {
        Input { seed: 0xa17e_9aad, scale: 3 }
    }

    /// A tiny input for unit tests.
    pub fn tiny() -> Input {
        Input { seed: 7, scale: 1 }
    }

    /// Scaled iteration count helper.
    pub fn iters(&self, base: u64) -> i64 {
        (base * self.scale as u64) as i64
    }
}

impl Default for Input {
    fn default() -> Input {
        Input::reference()
    }
}

/// Version of the workload registry's *behaviour*: bump whenever any
/// kernel's generated program or initial memory image changes for a given
/// [`Input`] (the committed checksum table in `tests/checksums.rs` fails
/// when that happens, forcing the bump). The persistent artifact cache
/// (`mg-harness::prep_cache`) folds this into every cache key, so stale
/// artifacts from an older kernel generation can never be replayed.
pub const REGISTRY_VERSION: u32 = 1;

/// A registered benchmark kernel.
#[derive(Clone)]
pub struct Workload {
    /// Short name (e.g. `"crc32"`, `"mcf.netw"`).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Builder: program plus initialized memory for the given input.
    pub build: fn(&Input) -> (Program, Memory),
}

impl Workload {
    /// Builds the program and its initial memory.
    pub fn build(&self, input: &Input) -> (Program, Memory) {
        (self.build)(input)
    }

    /// A stable identifier for cache keys and reports:
    /// `"<suite>/<name>@r<REGISTRY_VERSION>"`. Stable across runs and
    /// registration-order changes; changes when the registry version is
    /// bumped (i.e. when kernel behaviour changes).
    pub fn stable_id(&self) -> String {
        stable_id(self.suite, self.name)
    }
}

/// The [`Workload::stable_id`] string for a (suite, name) pair — exposed
/// separately so prepared workloads can reconstruct it without holding the
/// registry entry.
pub fn stable_id(suite: Suite, name: &str) -> String {
    format!("{suite}/{name}@r{REGISTRY_VERSION}")
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .finish()
    }
}

/// Every registered workload, grouped by suite in presentation order.
pub fn all() -> Vec<Workload> {
    fn w(name: &'static str, suite: Suite, build: fn(&Input) -> (Program, Memory)) -> Workload {
        Workload { name, suite, build }
    }
    vec![
        // SPECint-like.
        w("crafty.bits", Suite::SpecInt, spec::crafty_bits),
        w("gcc.expr", Suite::SpecInt, spec::gcc_expr),
        w("gzip.lz", Suite::SpecInt, spec::gzip_lz),
        w("mcf.netw", Suite::SpecInt, spec::mcf_netw),
        w("parser.tok", Suite::SpecInt, spec::parser_tok),
        w("twolf.place", Suite::SpecInt, spec::twolf_place),
        // MediaBench-like.
        w("adpcm.enc", Suite::MediaBench, media::adpcm_enc),
        w("adpcm.dec", Suite::MediaBench, media::adpcm_dec),
        w("jpeg.dct", Suite::MediaBench, media::jpeg_dct),
        w("mpeg2.idct", Suite::MediaBench, media::mpeg2_idct),
        w("gsm.toast", Suite::MediaBench, media::gsm_toast),
        w("epic.filter", Suite::MediaBench, media::epic_filter),
        // CommBench-like.
        w("reed.enc", Suite::CommBench, comm::reed_enc),
        w("drr.sched", Suite::CommBench, comm::drr_sched),
        w("frag.ip", Suite::CommBench, comm::frag_ip),
        w("rtr.lookup", Suite::CommBench, comm::rtr_lookup),
        w("tcpdump.filt", Suite::CommBench, comm::tcpdump_filt),
        // MiBench-like.
        w("bitcount", Suite::MiBench, mibench::bitcount),
        w("sha.rounds", Suite::MiBench, mibench::sha_rounds),
        w("crc32", Suite::MiBench, mibench::crc32),
        w("dijkstra", Suite::MiBench, mibench::dijkstra),
        w("stringsearch", Suite::MiBench, mibench::stringsearch),
        w("rgba.conv", Suite::MiBench, mibench::rgba_conv),
        w("dither", Suite::MiBench, mibench::dither),
    ]
}

/// Workloads of one suite.
pub fn by_suite(suite: Suite) -> Vec<Workload> {
    all().into_iter().filter(|w| w.suite == suite).collect()
}

/// Looks up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let ws = all();
        assert_eq!(ws.len(), 24);
        let mut names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24, "duplicate workload names");
        for s in Suite::ALL {
            assert!(by_suite(s).len() >= 5, "suite {s} too small");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("mcf.netw").is_some());
        assert!(by_name("nonesuch").is_none());
    }
}
