//! SPECint-like kernels: branchy, irregular control, pointer chasing,
//! interpreter dispatch — the low-IPC end of the paper's evaluation
//! (baseline SPECint IPCs in Figure 6 range from 0.27 for `mcf` to ~2.1).

use crate::common::{acc, counter, epilogue, fill_words, rng, DATA, DATA2, DATA3};
use crate::Input;
use mg_isa::{reg, Asm, Memory, Program};
use rand::Rng;

/// `crafty.bits` — bitboard population counts and attack masks (chess
/// engines are dominated by 64-bit bit twiddling with high ILP).
pub fn crafty_bits(input: &Input) -> (Program, Memory) {
    const WORDS: u64 = 64;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..WORDS {
        mem.write_u64(DATA + 8 * i, r.gen());
    }

    let mut a = Asm::new();
    let (x, t, u) = (reg(1), reg(2), reg(3));
    let (m5, m3, mf, mul) = (reg(8), reg(9), reg(10), reg(11));
    a.li(m5, 0x5555_5555_5555_5555u64 as i64);
    a.li(m3, 0x3333_3333_3333_3333u64 as i64);
    a.li(mf, 0x0f0f_0f0f_0f0f_0f0fu64 as i64);
    a.li(mul, 0x0101_0101_0101_0101u64 as i64);
    a.li(counter(), input.iters(60));
    a.label("outer");
    a.li(reg(21), DATA as i64);
    a.li(reg(28), WORDS as i64);
    a.label("inner");
    a.ldq(x, 0, reg(21));
    // SWAR popcount.
    a.srl(x, 1, t);
    a.and(t, m5, t);
    a.subq(x, t, x);
    a.and(x, m3, t);
    a.srl(x, 2, u);
    a.and(u, m3, u);
    a.addq(t, u, x);
    a.srl(x, 4, t);
    a.addq(x, t, x);
    a.and(x, mf, x);
    a.mulq(x, mul, x);
    a.srl(x, 56, x);
    a.addq(acc(), x, acc());
    // Attack-mask flavour: shifted masks feed the checksum too.
    a.ldq(x, 0, reg(21));
    a.sll(x, 7, t);
    a.bic(t, m5, t);
    a.xor(acc(), t, acc());
    a.lda(reg(21), 8, reg(21));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "inner");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("crafty.bits assembles"), mem)
}

/// `gcc.expr` — a byte-coded stack-machine evaluator: compiler-style
/// dispatch over small opcodes with a compare-and-branch chain.
pub fn gcc_expr(input: &Input) -> (Program, Memory) {
    const OPS: u64 = 1000;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    // Generate a valid opcode stream, tracking stack depth.
    let mut depth = 0u32;
    let mut addr = DATA;
    for _ in 0..OPS {
        let op: u8 = if depth == 0 {
            0
        } else if depth == 1 {
            if r.gen_bool(0.6) {
                0
            } else {
                5
            }
        } else if depth >= 50 {
            r.gen_range(1..=5)
        } else {
            match r.gen_range(0..10) {
                0..=2 => 0,
                3..=7 => r.gen_range(1..=4),
                _ => 5,
            }
        };
        mem.write_u8(addr, op);
        addr += 1;
        match op {
            0 => {
                mem.write_u8(addr, r.gen());
                addr += 1;
                depth += 1;
            }
            5 => depth -= 1,
            _ => depth -= 1, // binary op: pop 2 push 1
        }
    }

    let mut a = Asm::new();
    let (op, t, adr, b, v) = (reg(1), reg(2), reg(4), reg(5), reg(6));
    a.li(counter(), input.iters(8));
    a.label("outer");
    a.li(reg(20), DATA as i64); // code pointer
    a.li(reg(21), DATA2 as i64); // stack base
    a.li(reg(22), 0); // stack offset
    a.li(reg(28), OPS as i64);
    a.label("inner");
    a.ldbu(op, 0, reg(20));
    a.lda(reg(20), 1, reg(20));
    a.beq(op, "op_push");
    a.cmpeq(op, 1, t);
    a.bne(t, "op_add");
    a.cmpeq(op, 2, t);
    a.bne(t, "op_sub");
    a.cmpeq(op, 3, t);
    a.bne(t, "op_and");
    a.cmpeq(op, 4, t);
    a.bne(t, "op_xor");
    // op 5: pop into the checksum.
    a.addq(reg(21), reg(22), adr);
    a.ldq(b, -8, adr);
    a.addq(acc(), b, acc());
    a.subq(reg(22), 8, reg(22));
    a.br("next");
    a.label("op_push");
    a.ldbu(v, 0, reg(20));
    a.lda(reg(20), 1, reg(20));
    a.addq(reg(21), reg(22), adr);
    a.stq(v, 0, adr);
    a.lda(reg(22), 8, reg(22));
    a.br("next");
    for (label, make) in [("op_add", 1u8), ("op_sub", 2), ("op_and", 3), ("op_xor", 4)] {
        a.label(label);
        a.addq(reg(21), reg(22), adr);
        a.ldq(b, -8, adr);
        a.ldq(v, -16, adr);
        match make {
            1 => a.addq(v, b, v),
            2 => a.subq(v, b, v),
            3 => a.and(v, b, v),
            _ => a.xor(v, b, v),
        };
        a.stq(v, -16, adr);
        a.subq(reg(22), 8, reg(22));
        a.br("next");
    }
    a.label("next");
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "inner");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("gcc.expr assembles"), mem)
}

/// `gzip.lz` — LZ77-style match finding: hashing, table probes, and
/// data-dependent match/no-match branches.
pub fn gzip_lz(input: &Input) -> (Program, Memory) {
    const LEN: u64 = 2048;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    // Compressible input: small alphabet with repeats.
    for i in 0..LEN {
        let b: u8 = if r.gen_bool(0.3) { b'a' } else { r.gen_range(b'a'..b'j') };
        mem.write_u8(DATA + i, b);
    }

    let mut a = Asm::new();
    let (b0, b1, h, cand, x, y, t) = (reg(1), reg(2), reg(3), reg(4), reg(5), reg(6), reg(7));
    a.li(counter(), input.iters(3));
    a.label("outer");
    a.li(reg(20), DATA as i64); // text base
    a.li(reg(21), DATA2 as i64); // hash table (u32 positions)
    a.li(reg(22), 0); // pos
    a.li(reg(28), (LEN - 8) as i64);
    a.label("inner");
    // h = ((b0 << 4) ^ b1) & 0xff
    a.addq(reg(20), reg(22), t);
    a.ldbu(b0, 0, t);
    a.ldbu(b1, 1, t);
    a.sll(b0, 4, h);
    a.xor(h, b1, h);
    a.and(h, 0xff, h);
    // cand = table[h]; table[h] = pos
    a.s4addq(h, reg(21), t);
    a.ldl(cand, 0, t);
    a.stl(reg(22), 0, t);
    // No candidate yet this pass (cand >= pos): skip.
    a.cmpult(cand, reg(22), t);
    a.beq(t, "advance");
    // Compare 8 bytes at pos and cand.
    a.addq(reg(20), reg(22), t);
    a.ldq(x, 0, t);
    a.addq(reg(20), cand, t);
    a.ldq(y, 0, t);
    a.xor(x, y, t);
    a.beq(t, "match8");
    // First byte equal? (cheap partial credit)
    a.and(t, 0xff, t);
    a.bne(t, "advance");
    a.addq(acc(), 1, acc());
    a.br("advance");
    a.label("match8");
    a.addq(acc(), 8, acc());
    a.label("advance");
    a.addq(reg(22), 1, reg(22));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "inner");
    // Clear the hash table for the next pass (256 entries).
    a.li(reg(28), 256);
    a.li(t, DATA2 as i64);
    a.label("clear");
    a.stl(mg_isa::Reg::ZERO, 0, t);
    a.lda(t, 4, t);
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "clear");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("gzip.lz assembles"), mem)
}

/// `mcf.netw` — network-simplex-style pointer chasing over nodes spread
/// through a multi-megabyte arena: the canonical memory-bound SPECint
/// program (baseline IPC 0.27 in the paper).
pub fn mcf_netw(input: &Input) -> (Program, Memory) {
    const NODES: u64 = 4096;
    const STRIDE: u64 = 256;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    // A random Hamiltonian cycle over the nodes.
    let mut order: Vec<u64> = (1..NODES).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, r.gen_range(0..=i));
    }
    let mut chain = vec![0u64];
    chain.extend(&order);
    for w in 0..NODES {
        let here = DATA3 + chain[w as usize] * STRIDE;
        let next = DATA3 + chain[((w + 1) % NODES) as usize] * STRIDE;
        mem.write_u64(here, next);
        mem.write_u64(here + 8, r.gen_range(0..1000));
    }

    let mut a = Asm::new();
    let (node, cost, t) = (reg(21), reg(2), reg(3));
    a.li(node, DATA3 as i64);
    a.li(counter(), input.iters(10000));
    a.label("walk");
    a.ldq(cost, 8, node);
    // Cost threshold branch: irregular, data dependent.
    a.cmplt(cost, 500, t);
    a.beq(t, "expensive");
    a.addq(acc(), cost, acc());
    a.br("step");
    a.label("expensive");
    a.subq(acc(), cost, acc());
    a.label("step");
    a.ldq(node, 0, node); // dependent pointer chase
    a.subq(counter(), 1, counter());
    a.bne(counter(), "walk");
    epilogue(&mut a);
    (a.finish().expect("mcf.netw assembles"), mem)
}

/// `parser.tok` — character-class tokenization: byte loads, class-table
/// lookups, and state-dependent branching.
pub fn parser_tok(input: &Input) -> (Program, Memory) {
    const LEN: u64 = 2048;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..LEN {
        let b: u8 = if r.gen_bool(0.2) { b' ' } else { r.gen_range(b'a'..=b'z') };
        mem.write_u8(DATA + i, b);
    }
    // Class table: 1 for letters, 0 otherwise.
    for c in 0..256u64 {
        let is_alpha = (c as u8).is_ascii_lowercase() || (c as u8).is_ascii_uppercase();
        mem.write_u8(DATA2 + c, is_alpha as u8);
    }

    let mut a = Asm::new();
    let (c, cls, prev, t) = (reg(1), reg(2), reg(5), reg(3));
    a.li(counter(), input.iters(3));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(21), DATA2 as i64);
    a.li(prev, 0);
    a.li(reg(28), LEN as i64);
    a.label("inner");
    a.ldbu(c, 0, reg(20));
    a.addq(reg(21), c, t);
    a.ldbu(cls, 0, t);
    a.beq(cls, "not_word");
    // Token starts when class goes 0 -> 1.
    a.bne(prev, "in_word");
    a.addq(acc(), 1, acc());
    a.label("in_word");
    a.addq(acc(), c, acc());
    a.br("cont");
    a.label("not_word");
    a.xor(acc(), 0x1f, acc());
    a.label("cont");
    a.mov(cls, prev);
    a.lda(reg(20), 1, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "inner");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("parser.tok assembles"), mem)
}

/// `twolf.place` — placement cost evaluation: Manhattan distances with
/// branch-free absolute values and conditional best-cost updates.
pub fn twolf_place(input: &Input) -> (Program, Memory) {
    const CELLS: u64 = 512;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    fill_words(&mut mem, DATA, CELLS, 4096, &mut r); // x coords
    fill_words(&mut mem, DATA2, CELLS, 4096, &mut r); // y coords

    let mut a = Asm::new();
    let (x0, x1, y0, y1, dx, dy, s, best, t) =
        (reg(1), reg(2), reg(3), reg(4), reg(5), reg(6), reg(7), reg(17), reg(9));
    a.li(counter(), input.iters(6));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(21), DATA2 as i64);
    a.li(best, 1 << 30);
    a.li(reg(28), (CELLS - 1) as i64);
    a.label("inner");
    a.ldl(x0, 0, reg(20));
    a.ldl(x1, 4, reg(20));
    a.ldl(y0, 0, reg(21));
    a.ldl(y1, 4, reg(21));
    a.subq(x0, x1, dx);
    a.sra(dx, 63, t); // branch-free abs: (dx ^ m) - m
    a.xor(dx, t, dx);
    a.subq(dx, t, dx);
    a.subq(y0, y1, dy);
    a.sra(dy, 63, t);
    a.xor(dy, t, dy);
    a.subq(dy, t, dy);
    a.addq(dx, dy, s);
    a.addq(acc(), s, acc());
    // Conditional best update (data-dependent branch).
    a.cmplt(s, best, t);
    a.beq(t, "no_best");
    a.mov(s, best);
    a.label("no_best");
    a.lda(reg(20), 4, reg(20));
    a.lda(reg(21), 4, reg(21));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "inner");
    a.addq(acc(), best, acc());
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("twolf.place assembles"), mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::result;
    use mg_profile::run_program;

    fn runs(build: fn(&Input) -> (Program, Memory), input: &Input) -> u64 {
        let (p, mut mem) = build(input);
        run_program(&p, &mut mem, None, 50_000_000).expect("kernel halts");
        result(&mem)
    }

    #[test]
    fn all_spec_kernels_run_and_are_deterministic() {
        for build in [crafty_bits, gcc_expr, gzip_lz, mcf_netw, parser_tok, twolf_place] {
            let a = runs(build, &Input::tiny());
            let b = runs(build, &Input::tiny());
            assert_eq!(a, b, "kernel must be deterministic");
        }
    }

    #[test]
    fn different_seeds_change_results() {
        let a = runs(crafty_bits, &Input { seed: 1, scale: 1 });
        let b = runs(crafty_bits, &Input { seed: 2, scale: 1 });
        assert_ne!(a, b);
    }

    #[test]
    fn mcf_chain_is_a_full_cycle() {
        // The pointer chain must visit every node before repeating.
        let (_, mem) = mcf_netw(&Input::tiny());
        let mut seen = std::collections::HashSet::new();
        let mut node = DATA3;
        for _ in 0..4096 {
            assert!(seen.insert(node), "chain revisits a node early");
            node = mem.read_u64(node);
        }
        assert_eq!(node, DATA3, "chain closes into a cycle");
    }

    #[test]
    fn gcc_expr_stream_is_valid() {
        let (_, mem) = gcc_expr(&Input::tiny());
        // Re-walk the stream and confirm depth never goes negative.
        let mut addr = DATA;
        let mut depth: i64 = 0;
        for _ in 0..1000 {
            let op = mem.read_u8(addr);
            addr += 1;
            match op {
                0 => {
                    addr += 1;
                    depth += 1;
                }
                _ => depth -= 1,
            }
            assert!(depth >= 0, "stack machine underflows");
        }
    }
}
