//! MediaBench-like kernels: regular arithmetic loops over sample and
//! pixel streams — the high-IPC, high-coverage end of the paper's
//! evaluation (MediaBench gains the most from mini-graphs, 10–12%).

use crate::common::{acc, counter, epilogue, rng, DATA, DATA2, DATA3};
use crate::Input;
use mg_isa::{reg, Asm, Memory, Program};
use rand::Rng;

/// IMA ADPCM step-size table (the standard 89-entry table).
fn write_step_table(mem: &mut Memory, base: u64) {
    const STEPS: [u32; 89] = [
        7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55,
        60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
        337, 371, 408, 449, 494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411,
        1552, 1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
        5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500,
        20350, 22385, 24623, 27086, 29794, 32767,
    ];
    for (i, s) in STEPS.iter().enumerate() {
        mem.write_u32(base + 4 * i as u64, *s);
    }
    // Index adjustment for the 3-bit magnitude: -1,-1,-1,-1,2,4,6,8.
    const ADJ: [i8; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];
    for (i, d) in ADJ.iter().enumerate() {
        mem.write_u8(base + 512 + i as u64, *d as u8);
    }
}

/// Emits `lo <= x <= hi` clamping of register `x` using branches (the
/// saturation idiom of media codecs).
fn emit_clamp(a: &mut Asm, x: mg_isa::Reg, t: mg_isa::Reg, lo: i64, hi: i64, tag: &str) {
    a.cmplt(x, lo, t);
    a.beq(t, &format!("{tag}_nolo")[..]);
    a.li(x, lo);
    a.label(&format!("{tag}_nolo")[..]);
    a.cmple(x, hi, t);
    a.bne(t, &format!("{tag}_nohi")[..]);
    a.li(x, hi);
    a.label(&format!("{tag}_nohi")[..]);
}

/// `adpcm.enc` — IMA ADPCM encoding: per-sample quantization with
/// data-dependent branches and step-table lookups.
pub fn adpcm_enc(input: &Input) -> (Program, Memory) {
    const SAMPLES: u64 = 1024;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    // A wandering waveform (correlated, like speech).
    let mut v: i32 = 0;
    for i in 0..SAMPLES {
        v = (v + r.gen_range(-500..=500)).clamp(-32768, 32767);
        mem.write_u16(DATA + 2 * i, v as i16 as u16);
    }
    write_step_table(&mut mem, DATA3);

    let mut a = Asm::new();
    let (val, diff, sign, step, delta, t, vp, index) =
        (reg(1), reg(2), reg(3), reg(4), reg(5), reg(6), reg(17), reg(18));
    a.li(counter(), input.iters(3));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(21), DATA3 as i64);
    a.li(vp, 0);
    a.li(index, 0);
    a.li(reg(28), SAMPLES as i64);
    a.label("inner");
    a.ldwu(val, 0, reg(20));
    a.sextw(val, 0, val);
    a.subq(val, vp, diff);
    // sign = diff < 0; if so negate.
    a.cmplt(diff, 0, sign);
    a.beq(sign, "pos");
    a.subq(mg_isa::Reg::ZERO, diff, diff);
    a.label("pos");
    // step = table[index]
    a.s4addq(index, reg(21), t);
    a.ldl(step, 0, t);
    // 3-bit quantization by successive comparison.
    a.li(delta, 0);
    a.cmplt(diff, step, t);
    a.bne(t, "q1");
    a.bis(delta, 4, delta);
    a.subq(diff, step, diff);
    a.label("q1");
    a.srl(step, 1, t);
    a.cmplt(diff, t, t);
    a.bne(t, "q2");
    a.bis(delta, 2, delta);
    a.srl(step, 1, t);
    a.subq(diff, t, diff);
    a.label("q2");
    a.srl(step, 2, t);
    a.cmplt(diff, t, t);
    a.bne(t, "q3");
    a.bis(delta, 1, delta);
    a.label("q3");
    // Predictor update: vp += (sign ? -1 : 1) * ((delta&7)*step >> 2).
    a.and(delta, 7, t);
    a.mulq(t, step, t);
    a.srl(t, 2, t);
    a.beq(sign, "addup");
    a.subq(vp, t, vp);
    a.br("clamped");
    a.label("addup");
    a.addq(vp, t, vp);
    a.label("clamped");
    emit_clamp(&mut a, vp, t, -32768, 32767, "vp");
    // index += adj[delta & 7], clamped to [0, 88].
    a.and(delta, 7, t);
    a.addq(reg(21), t, t);
    a.ldbu(t, 512, t);
    a.sextb(t, 0, t);
    a.addq(index, t, index);
    emit_clamp(&mut a, index, t, 0, 88, "ix");
    // Checksum the code stream.
    a.sll(acc(), 1, acc());
    a.xor(acc(), delta, acc());
    a.lda(reg(20), 2, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "inner");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("adpcm.enc assembles"), mem)
}

/// `adpcm.dec` — IMA ADPCM decoding: the inverse chain, dominated by
/// shift/add reconstruction and clamping.
pub fn adpcm_dec(input: &Input) -> (Program, Memory) {
    const CODES: u64 = 2048;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..CODES {
        mem.write_u8(DATA + i, r.gen_range(0..16));
    }
    write_step_table(&mut mem, DATA3);

    let mut a = Asm::new();
    let (code, step, diff, t, vp, index) = (reg(1), reg(2), reg(3), reg(4), reg(17), reg(18));
    a.li(counter(), input.iters(3));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(21), DATA3 as i64);
    a.li(vp, 0);
    a.li(index, 0);
    a.li(reg(28), CODES as i64);
    a.label("inner");
    a.ldbu(code, 0, reg(20));
    a.s4addq(index, reg(21), t);
    a.ldl(step, 0, t);
    // diff = ((code&7)*step) >> 2 (+ step>>3 rounding term).
    a.and(code, 7, diff);
    a.mulq(diff, step, diff);
    a.srl(diff, 2, diff);
    a.srl(step, 3, t);
    a.addq(diff, t, diff);
    // Sign bit 8: subtract or add.
    a.and(code, 8, t);
    a.beq(t, "plus");
    a.subq(vp, diff, vp);
    a.br("upd");
    a.label("plus");
    a.addq(vp, diff, vp);
    a.label("upd");
    emit_clamp(&mut a, vp, t, -32768, 32767, "vp");
    a.and(code, 7, t);
    a.addq(reg(21), t, t);
    a.ldbu(t, 512, t);
    a.sextb(t, 0, t);
    a.addq(index, t, index);
    emit_clamp(&mut a, index, t, 0, 88, "ix");
    a.addq(acc(), vp, acc());
    a.lda(reg(20), 1, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "inner");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("adpcm.dec assembles"), mem)
}

/// `jpeg.dct` — row-wise 8-point DCT butterflies over coefficient blocks:
/// long add/sub/multiply chains with high ILP.
pub fn jpeg_dct(input: &Input) -> (Program, Memory) {
    const BLOCKS: u64 = 16;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..BLOCKS * 64 {
        mem.write_u32(DATA + 4 * i, r.gen_range(0..256));
    }

    let mut a = Asm::new();
    a.li(counter(), input.iters(8));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(28), (BLOCKS * 8) as i64); // rows
    a.label("row");
    // Load the row.
    for i in 0..8u8 {
        a.ldl(reg(1 + i), (4 * i) as i64, reg(20));
    }
    // Butterfly stage 1: s_i = x_i + x_{7-i}, d_i = x_i - x_{7-i}.
    for i in 0..4u8 {
        a.addq(reg(1 + i), reg(8 - i), reg(9 + i)); // s in r9..r12
    }
    for i in 0..4u8 {
        a.subq(reg(1 + i), reg(8 - i), reg(1 + i)); // d in r1..r4
    }
    // Even part.
    a.addq(reg(9), reg(12), reg(13));
    a.subq(reg(9), reg(12), reg(14));
    a.addq(reg(10), reg(11), reg(15));
    a.subq(reg(10), reg(11), reg(10));
    // Fixed-point rotations (constants are scaled cosines).
    a.mull(reg(14), 4433, reg(14));
    a.sra(reg(14), 11, reg(14));
    a.mull(reg(10), 10703, reg(10));
    a.sra(reg(10), 13, reg(10));
    // Odd part: pairwise rotations of the differences.
    a.mull(reg(1), 12299, reg(1));
    a.sra(reg(1), 13, reg(1));
    a.mull(reg(2), 7373, reg(2));
    a.sra(reg(2), 12, reg(2));
    a.mull(reg(3), 20995, reg(3));
    a.sra(reg(3), 14, reg(3));
    a.mull(reg(4), 16069, reg(4));
    a.sra(reg(4), 14, reg(4));
    a.addq(reg(1), reg(3), reg(1));
    a.addq(reg(2), reg(4), reg(2));
    // Store outputs.
    a.addq(reg(13), reg(15), reg(9));
    a.stl(reg(9), 0, reg(20));
    a.stl(reg(1), 4, reg(20));
    a.stl(reg(14), 8, reg(20));
    a.stl(reg(2), 12, reg(20));
    a.subq(reg(13), reg(15), reg(9));
    a.stl(reg(9), 16, reg(20));
    a.stl(reg(3), 20, reg(20));
    a.stl(reg(10), 24, reg(20));
    a.stl(reg(4), 28, reg(20));
    a.addq(acc(), reg(9), acc());
    a.lda(reg(20), 32, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "row");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("jpeg.dct assembles"), mem)
}

/// `mpeg2.idct` — inverse transform rows with final saturation to pixel
/// range and byte stores (decode-side media idioms).
pub fn mpeg2_idct(input: &Input) -> (Program, Memory) {
    const BLOCKS: u64 = 16;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..BLOCKS * 64 {
        mem.write_u32(DATA + 4 * i, r.gen_range(0..2048));
    }

    let mut a = Asm::new();
    let t = reg(15);
    a.li(counter(), input.iters(8));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(21), DATA2 as i64); // pixel output
    a.li(reg(28), (BLOCKS * 16) as i64); // quads
    a.label("quad");
    for i in 0..4u8 {
        a.ldl(reg(1 + i), (4 * i) as i64, reg(20));
    }
    // Simplified inverse butterfly.
    a.addq(reg(1), reg(3), reg(5));
    a.subq(reg(1), reg(3), reg(6));
    a.mull(reg(2), 2896, reg(7));
    a.sra(reg(7), 11, reg(7));
    a.mull(reg(4), 2896, reg(8));
    a.sra(reg(8), 11, reg(8));
    a.addq(reg(5), reg(7), reg(9));
    a.addq(reg(6), reg(8), reg(10));
    a.subq(reg(5), reg(7), reg(11));
    a.subq(reg(6), reg(8), reg(12));
    // Saturate each to [0,255] and store bytes.
    for (i, rr) in [(0i64, reg(9)), (1, reg(10)), (2, reg(11)), (3, reg(12))] {
        a.sra(rr, 3, rr);
        emit_clamp(&mut a, rr, t, 0, 255, &format!("px{i}"));
        a.stb(rr, i, reg(21));
        a.addq(acc(), rr, acc());
    }
    a.lda(reg(20), 16, reg(20));
    a.lda(reg(21), 4, reg(21));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "quad");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("mpeg2.idct assembles"), mem)
}

/// `gsm.toast` — GSM 06.10-style saturated arithmetic: add/mult chains
/// with rarely-taken saturation branches.
pub fn gsm_toast(input: &Input) -> (Program, Memory) {
    const SAMPLES: u64 = 1024;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..SAMPLES {
        mem.write_u16(DATA + 2 * i, (r.gen_range(-12000i32..12000) as i16) as u16);
    }

    let mut a = Asm::new();
    let (x, y, s, t) = (reg(1), reg(2), reg(3), reg(4));
    a.li(counter(), input.iters(6));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(17), 0); // predictor state
    a.li(reg(28), (SAMPLES - 1) as i64);
    a.label("inner");
    a.ldwu(x, 0, reg(20));
    a.sextw(x, 0, x);
    a.ldwu(y, 2, reg(20));
    a.sextw(y, 0, y);
    // GSM_MULT_R: (x * y + 16384) >> 15, saturated.
    a.mulq(x, y, s);
    a.lda(s, 16384, s);
    a.sra(s, 15, s);
    emit_clamp(&mut a, s, t, -32768, 32767, "mr");
    // GSM_ADD with saturation.
    a.addq(s, reg(17), s);
    emit_clamp(&mut a, s, t, -32768, 32767, "ad");
    // Short-term filter state update.
    a.sra(s, 2, reg(17));
    a.addq(acc(), s, acc());
    a.lda(reg(20), 2, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "inner");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("gsm.toast assembles"), mem)
}

/// `epic.filter` — an 8-tap FIR over a sample stream with coefficients
/// pinned in registers: the classic multiply-accumulate media loop.
pub fn epic_filter(input: &Input) -> (Program, Memory) {
    const SAMPLES: u64 = 1024;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..SAMPLES + 8 {
        mem.write_u32(DATA + 4 * i, r.gen_range(0..4096));
    }

    let mut a = Asm::new();
    // Coefficients in r8..r11 (symmetric 8-tap: pairs share coefficients).
    a.li(reg(8), 11);
    a.li(reg(9), 53);
    a.li(reg(10), 101);
    a.li(reg(11), 91);
    a.li(counter(), input.iters(3));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(21), DATA2 as i64);
    a.li(reg(28), SAMPLES as i64);
    a.label("inner");
    let s = reg(7);
    a.ldl(reg(1), 0, reg(20));
    a.mull(reg(1), reg(8), s);
    for (off, c) in [
        (4i64, reg(9)),
        (8, reg(10)),
        (12, reg(11)),
        (16, reg(11)),
        (20, reg(10)),
        (24, reg(9)),
        (28, reg(8)),
    ] {
        a.ldl(reg(1), off, reg(20));
        a.mull(reg(1), c, reg(2));
        a.addq(s, reg(2), s);
    }
    a.sra(s, 8, s);
    a.stl(s, 0, reg(21));
    a.addq(acc(), s, acc());
    a.lda(reg(20), 4, reg(20));
    a.lda(reg(21), 4, reg(21));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "inner");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("epic.filter assembles"), mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::result;
    use mg_profile::run_program;

    fn runs(build: fn(&Input) -> (Program, Memory), input: &Input) -> u64 {
        let (p, mut mem) = build(input);
        run_program(&p, &mut mem, None, 50_000_000).expect("kernel halts");
        result(&mem)
    }

    #[test]
    fn all_media_kernels_run_and_are_deterministic() {
        for build in [adpcm_enc, adpcm_dec, jpeg_dct, mpeg2_idct, gsm_toast, epic_filter] {
            let a = runs(build, &Input::tiny());
            let b = runs(build, &Input::tiny());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn idct_pixels_are_saturated() {
        let (p, mut mem) = mpeg2_idct(&Input::tiny());
        run_program(&p, &mut mem, None, 50_000_000).unwrap();
        for i in 0..64 {
            let px = mem.read_u8(DATA2 + i);
            // u8 by construction, but confirm the region was written.
            let _ = px;
        }
        assert!((0..64).any(|i| mem.read_u8(DATA2 + i) != 0), "pixels written");
    }

    #[test]
    fn step_table_is_monotonic() {
        let mut mem = Memory::new();
        write_step_table(&mut mem, DATA3);
        let mut prev = 0;
        for i in 0..89 {
            let s = mem.read_u32(DATA3 + 4 * i);
            assert!(s > prev, "step table must increase");
            prev = s;
        }
    }
}
