//! Shared conventions and helpers for workload kernels.
//!
//! Register conventions used by every kernel:
//!
//! * `r30` — outer loop counter;
//! * `r28`/`r29` — secondary counters;
//! * `r20..r27` — base pointers;
//! * `r16` — running checksum, stored to [`RESULT_ADDR`] before `halt`;
//! * `r1..r15` — scratch.

use mg_isa::{reg, Asm, Memory, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Address at which every kernel stores its 64-bit result checksum.
pub const RESULT_ADDR: u64 = 0x8000;

/// Base of the primary data region.
pub const DATA: u64 = 0x20_0000;

/// Base of the secondary data region.
pub const DATA2: u64 = 0x30_0000;

/// Base of the tertiary data region (tables).
pub const DATA3: u64 = 0x40_0000;

/// The checksum register, `r16`.
pub fn acc() -> Reg {
    reg(16)
}

/// The outer loop counter, `r30`.
pub fn counter() -> Reg {
    reg(30)
}

/// Deterministic RNG for input-data generation.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Fills `[addr, addr+len)` with random bytes.
pub fn fill_bytes(mem: &mut Memory, addr: u64, len: u64, rng: &mut StdRng) {
    for i in 0..len {
        mem.write_u8(addr + i, rng.gen());
    }
}

/// Fills `count` 32-bit little-endian words from `addr` with values in
/// `0..bound`.
pub fn fill_words(mem: &mut Memory, addr: u64, count: u64, bound: u32, rng: &mut StdRng) {
    for i in 0..count {
        mem.write_u32(addr + 4 * i, rng.gen_range(0..bound));
    }
}

/// Emits the standard kernel epilogue: store the checksum register to
/// [`RESULT_ADDR`] and halt.
pub fn epilogue(a: &mut Asm) {
    a.li(reg(15), RESULT_ADDR as i64);
    a.stq(acc(), 0, reg(15));
    a.halt();
}

/// Reads a kernel's result checksum.
pub fn result(mem: &Memory) -> u64 {
    mem.read_u64(RESULT_ADDR)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(42);
        let mut b = rng(42);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_eq!(va, vb);
    }

    #[test]
    fn fill_and_read_back() {
        let mut m = Memory::new();
        let mut r = rng(1);
        fill_bytes(&mut m, DATA, 64, &mut r);
        fill_words(&mut m, DATA2, 8, 100, &mut r);
        // At least one nonzero byte with overwhelming probability.
        assert!((0..64).any(|i| m.read_u8(DATA + i) != 0));
        assert!((0..8).all(|i| m.read_u32(DATA2 + 4 * i) < 100));
    }

    #[test]
    fn epilogue_stores_result() {
        use mg_isa::exec::run_to_halt;
        use mg_isa::exec::CpuState;
        let mut a = Asm::new();
        a.li(acc(), 0xdead);
        epilogue(&mut a);
        let p = a.finish().unwrap();
        let mut cpu = CpuState::new(0);
        let mut mem = Memory::new();
        run_to_halt(&p, &mut cpu, &mut mem, None, 100).unwrap();
        assert_eq!(result(&mem), 0xdead);
    }
}
