//! CommBench-like kernels: packet-header processing, table lookups,
//! checksums, and Galois-field coding — the network-processor workloads
//! of the paper's evaluation.

use crate::common::{acc, counter, epilogue, fill_bytes, rng, DATA, DATA2, DATA3};
use crate::Input;
use mg_isa::{reg, Asm, Memory, Program, Reg};
use rand::Rng;

/// Writes GF(256) log/antilog tables (generator polynomial 0x11d) used by
/// Reed-Solomon coding: `log` at `base` (256 bytes), `alog` at
/// `base + 256` (512 bytes, doubled to skip the mod-255 reduction).
fn write_gf_tables(mem: &mut Memory, base: u64) {
    let mut alog = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u32 = 1;
    for (i, a) in alog.iter_mut().enumerate().take(255) {
        *a = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11d;
        }
    }
    for i in 255..512 {
        alog[i] = alog[i - 255];
    }
    for (i, v) in log.iter().enumerate() {
        mem.write_u8(base + i as u64, *v);
    }
    for (i, v) in alog.iter().enumerate() {
        mem.write_u8(base + 256 + i as u64, *v);
    }
}

/// `reed.enc` — Reed-Solomon parity generation over GF(256) via log and
/// antilog table lookups (load → add → load chains, very fuseable).
pub fn reed_enc(input: &Input) -> (Program, Memory) {
    const MSG: u64 = 512;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    fill_bytes(&mut mem, DATA, MSG, &mut r);
    write_gf_tables(&mut mem, DATA3);
    // Generator coefficient logs (4 parity bytes).
    for (i, g) in [18u8, 251, 215, 28].iter().enumerate() {
        mem.write_u8(DATA2 + 64 + i as u64, *g);
    }

    let mut a = Asm::new();
    let (d, fb, lg, t, adr) = (reg(1), reg(2), reg(3), reg(4), reg(5));
    a.li(counter(), input.iters(4));
    a.label("outer");
    a.li(reg(20), DATA as i64); // message
    a.li(reg(21), DATA3 as i64); // log table
    a.li(reg(22), (DATA3 + 256) as i64); // alog table
    a.li(reg(23), DATA2 as i64); // parity bytes (4)

    // Clear parity.
    a.stl(Reg::ZERO, 0, reg(23));
    a.li(reg(28), MSG as i64);
    a.label("inner");
    a.ldbu(d, 0, reg(20));
    a.ldbu(fb, 0, reg(23));
    a.xor(d, fb, fb); // feedback = data ^ parity[0]
    a.beq(fb, "shift_only");
    a.addq(reg(21), fb, t);
    a.ldbu(lg, 0, t); // log[feedback]

    // Update each of the 4 parity bytes: p[i] = p[i+1] ^ alog[lg + g[i]].
    for i in 0..4i64 {
        a.addq(reg(23), 64 + i, t);
        a.ldbu(t, 0, t); // g log
        a.addq(lg, t, t);
        a.addq(reg(22), t, adr);
        a.ldbu(adr, 0, adr); // alog[..]
        if i < 3 {
            a.ldbu(t, i + 1, reg(23)); // p[i+1]
            a.xor(adr, t, adr);
        }
        a.stb(adr, i, reg(23));
    }
    a.br("advance");
    a.label("shift_only");
    // Parity shifts left by one byte.
    a.ldl(t, 0, reg(23));
    a.srl(t, 8, t);
    a.stl(t, 0, reg(23));
    a.label("advance");
    a.lda(reg(20), 1, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "inner");
    a.ldl(t, 0, reg(23));
    a.addq(acc(), t, acc());
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("reed.enc assembles"), mem)
}

/// `drr.sched` — deficit-round-robin packet scheduling: per-queue state
/// updates with compare-and-branch service decisions.
pub fn drr_sched(input: &Input) -> (Program, Memory) {
    const QUEUES: u64 = 64;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    // Per-queue head-packet sizes (cyclic lists of 8) and deficits.
    for q in 0..QUEUES {
        for s in 0..8 {
            mem.write_u32(DATA + (q * 8 + s) * 4, r.gen_range(64..1500));
        }
        mem.write_u32(DATA2 + q * 4, 0); // deficit
        mem.write_u32(DATA2 + 1024 + q * 4, 0); // list index
    }

    let mut a = Asm::new();
    let (def, size, idx, t, adr) = (reg(1), reg(2), reg(3), reg(4), reg(5));
    const QUANTUM: i64 = 700;
    a.li(counter(), input.iters(60)); // rounds
    a.label("round");
    a.li(reg(22), 0); // queue number
    a.li(reg(28), QUEUES as i64);
    a.label("queue");
    // deficit += quantum
    a.li(reg(20), DATA2 as i64);
    a.s4addq(reg(22), reg(20), adr);
    a.ldl(def, 0, adr);
    a.lda(def, QUANTUM, def);
    // head packet size
    a.ldl(idx, 1024, adr);
    a.sll(reg(22), 3, t);
    a.addq(t, idx, t);
    a.li(reg(21), DATA as i64);
    a.s4addq(t, reg(21), t);
    a.ldl(size, 0, t);
    // serve while deficit >= size (at most 3 packets per visit).
    for k in 0..3 {
        a.cmplt(def, size, t);
        a.bne(t, &format!("done{k}")[..]);
        a.subq(def, size, def);
        a.addq(acc(), size, acc());
        a.addq(idx, 1, idx);
        a.and(idx, 7, idx);
    }
    for k in 0..3 {
        a.label(&format!("done{k}")[..]);
    }
    a.stl(def, 0, adr);
    a.stl(idx, 1024, adr);
    a.addq(reg(22), 1, reg(22));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "queue");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "round");
    epilogue(&mut a);
    (a.finish().expect("drr.sched assembles"), mem)
}

/// `frag.ip` — IP fragmentation: per-packet header splitting with running
/// ones-complement checksum updates.
pub fn frag_ip(input: &Input) -> (Program, Memory) {
    const PACKETS: u64 = 256;
    const MTU: i64 = 576;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..PACKETS {
        mem.write_u32(DATA + 8 * i, r.gen_range(64..1500)); // length
        mem.write_u32(DATA + 8 * i + 4, r.gen()); // id/flags word
    }

    let mut a = Asm::new();
    let (len, hdr, off, sum, t) = (reg(1), reg(2), reg(3), reg(4), reg(5));
    a.li(counter(), input.iters(8));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(21), DATA2 as i64); // fragment output
    a.li(reg(28), PACKETS as i64);
    a.label("packet");
    a.ldl(len, 0, reg(20));
    a.ldl(hdr, 4, reg(20));
    a.li(off, 0);
    a.label("frag");
    // Emit one fragment header: id word, offset, length(min(len, MTU)).
    a.cmplt(len, MTU, t);
    a.bne(t, "last_frag");
    // Full-size fragment.
    a.stl(hdr, 0, reg(21));
    a.stl(off, 4, reg(21));
    a.li(t, MTU);
    a.stl(t, 8, reg(21));
    // Checksum over the three words.
    a.addq(hdr, off, sum);
    a.lda(sum, MTU, sum);
    a.srl(sum, 16, t);
    a.and(sum, 0xffff, sum);
    a.addq(sum, t, sum);
    a.addq(acc(), sum, acc());
    a.lda(reg(21), 12, reg(21));
    a.lda(off, MTU, off);
    a.subq(len, MTU, len);
    a.br("frag");
    a.label("last_frag");
    a.stl(hdr, 0, reg(21));
    a.stl(off, 4, reg(21));
    a.stl(len, 8, reg(21));
    a.addq(hdr, off, sum);
    a.addq(sum, len, sum);
    a.srl(sum, 16, t);
    a.and(sum, 0xffff, sum);
    a.addq(sum, t, sum);
    a.addq(acc(), sum, acc());
    a.lda(reg(21), 12, reg(21));
    a.lda(reg(20), 8, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "packet");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("frag.ip assembles"), mem)
}

/// `rtr.lookup` — two-level route-table lookup per destination address:
/// dependent loads through index tables.
pub fn rtr_lookup(input: &Input) -> (Program, Memory) {
    const ADDRS: u64 = 2048;
    const L2_BLOCKS: u64 = 64;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..ADDRS {
        mem.write_u32(DATA + 4 * i, r.gen());
    }
    // Level 1: 256 entries -> one of 64 level-2 block addresses.
    for i in 0..256u64 {
        let blk = r.gen_range(0..L2_BLOCKS);
        mem.write_u32(DATA2 + 4 * i, (DATA3 + blk * 1024) as u32);
    }
    // Level 2: 64 blocks of 256 next-hop entries.
    for i in 0..L2_BLOCKS * 256 {
        mem.write_u32(DATA3 + 4 * i, r.gen_range(1..32));
    }

    let mut a = Asm::new();
    let (addr, i1, base2, i2, hop, t) = (reg(1), reg(2), reg(3), reg(4), reg(5), reg(6));
    a.li(counter(), input.iters(16));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(21), DATA2 as i64);
    a.li(reg(28), ADDRS as i64);
    a.label("inner");
    a.ldl(addr, 0, reg(20));
    a.zapnot(addr, 0x0f, addr); // treat as unsigned 32-bit
    a.srl(addr, 24, i1);
    a.s4addq(i1, reg(21), t);
    a.ldl(base2, 0, t); // level-2 block address
    a.zapnot(base2, 0x0f, base2);
    a.srl(addr, 16, i2);
    a.and(i2, 0xff, i2);
    a.s4addq(i2, base2, t);
    a.ldl(hop, 0, t);
    a.addq(acc(), hop, acc());
    a.lda(reg(20), 4, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "inner");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("rtr.lookup assembles"), mem)
}

/// `tcpdump.filt` — packet filtering: field masks and compare chains with
/// early-exit branches over header records.
pub fn tcpdump_filt(input: &Input) -> (Program, Memory) {
    const RECORDS: u64 = 512;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..RECORDS {
        let base = DATA + 20 * i;
        mem.write_u32(base, if r.gen_bool(0.5) { 6 } else { 17 }); // proto
        mem.write_u32(base + 4, r.gen_range(0..65536)); // src port
        mem.write_u32(base + 8, r.gen_range(0..65536)); // dst port
        mem.write_u32(base + 12, r.gen()); // src addr
        mem.write_u32(base + 16, r.gen()); // dst addr
    }

    let mut a = Asm::new();
    let (proto, port, adr, t) = (reg(1), reg(2), reg(3), reg(4));
    a.li(counter(), input.iters(12));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(28), RECORDS as i64);
    a.label("rec");
    a.ldl(proto, 0, reg(20));
    a.cmpeq(proto, 6, t);
    a.beq(t, "reject"); // only TCP
    a.ldl(port, 4, reg(20));
    a.cmplt(port, 1024, t);
    a.beq(t, "check_dst"); // well-known source port?
    a.addq(acc(), 1, acc());
    a.br("reject");
    a.label("check_dst");
    a.ldl(port, 8, reg(20));
    a.cmpeq(port, 80, t);
    a.bne(t, "http");
    a.cmpeq(port, 443, t);
    a.bne(t, "http");
    a.br("reject");
    a.label("http");
    a.ldl(adr, 16, reg(20));
    a.and(adr, 0xff, adr);
    a.addq(acc(), adr, acc());
    a.label("reject");
    a.lda(reg(20), 20, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "rec");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("tcpdump.filt assembles"), mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::result;
    use mg_profile::run_program;

    fn runs(build: fn(&Input) -> (Program, Memory), input: &Input) -> u64 {
        let (p, mut mem) = build(input);
        run_program(&p, &mut mem, None, 50_000_000).expect("kernel halts");
        result(&mem)
    }

    #[test]
    fn all_comm_kernels_run_and_are_deterministic() {
        for build in [reed_enc, drr_sched, frag_ip, rtr_lookup, tcpdump_filt] {
            let a = runs(build, &Input::tiny());
            let b = runs(build, &Input::tiny());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn gf_tables_are_inverse() {
        let mut mem = Memory::new();
        write_gf_tables(&mut mem, DATA3);
        for x in 1..256u64 {
            let lg = mem.read_u8(DATA3 + x);
            let back = mem.read_u8(DATA3 + 256 + lg as u64);
            assert_eq!(back as u64, x, "alog[log[{x}]] == {x}");
        }
    }

    #[test]
    fn drr_conserves_service() {
        // Service counted in the checksum must be positive and scale with
        // rounds.
        let small = runs(drr_sched, &Input { seed: 3, scale: 1 });
        let large = runs(drr_sched, &Input { seed: 3, scale: 2 });
        assert!(small > 0);
        assert!(large > small);
    }
}
