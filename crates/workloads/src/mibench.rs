//! MiBench-like kernels: embedded-systems code — bit manipulation,
//! hashing, CRC, graph relaxation, search, and pixel processing.

use crate::common::{acc, counter, epilogue, fill_bytes, rng, DATA, DATA2, DATA3};
use crate::Input;
use mg_isa::{reg, Asm, Memory, Program};
use rand::Rng;

/// `bitcount` — population counts by two methods: a branch-free SWAR
/// chain and Kernighan's data-dependent clear-lowest-bit loop.
pub fn bitcount(input: &Input) -> (Program, Memory) {
    const WORDS: u64 = 64;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..WORDS {
        mem.write_u64(DATA + 8 * i, r.gen());
    }

    let mut a = Asm::new();
    let (x, t, u, n) = (reg(1), reg(2), reg(3), reg(4));
    a.li(reg(8), 0x5555_5555_5555_5555u64 as i64);
    a.li(reg(9), 0x3333_3333_3333_3333u64 as i64);
    a.li(reg(10), 0x0f0f_0f0f_0f0f_0f0fu64 as i64);
    a.li(reg(11), 0x0101_0101_0101_0101u64 as i64);
    a.li(counter(), input.iters(10));
    a.label("outer");
    a.li(reg(21), DATA as i64);
    a.li(reg(28), WORDS as i64);
    a.label("word");
    // Method 1: SWAR.
    a.ldq(x, 0, reg(21));
    a.srl(x, 1, t);
    a.and(t, reg(8), t);
    a.subq(x, t, x);
    a.and(x, reg(9), t);
    a.srl(x, 2, u);
    a.and(u, reg(9), u);
    a.addq(t, u, x);
    a.srl(x, 4, t);
    a.addq(x, t, x);
    a.and(x, reg(10), x);
    a.mulq(x, reg(11), x);
    a.srl(x, 56, x);
    a.addq(acc(), x, acc());
    // Method 2: Kernighan (x &= x - 1 until zero).
    a.ldq(x, 0, reg(21));
    a.li(n, 0);
    a.label("kern");
    a.beq(x, "kdone");
    a.subq(x, 1, t);
    a.and(x, t, x);
    a.addq(n, 1, n);
    a.br("kern");
    a.label("kdone");
    a.addq(acc(), n, acc());
    a.lda(reg(21), 8, reg(21));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "word");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("bitcount assembles"), mem)
}

/// `sha.rounds` — SHA-1-style message schedule and compression rounds:
/// rotate-xor-add chains (the paper's `sha` only gains once serialization
/// is removed, Figure 7).
pub fn sha_rounds(input: &Input) -> (Program, Memory) {
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..16u64 {
        mem.write_u32(DATA + 4 * i, r.gen());
    }

    let mut a = Asm::new();
    let mask32 = reg(14);
    let (x, t, u) = (reg(1), reg(2), reg(3));
    let (va, vb, vc, vd, ve) = (reg(17), reg(18), reg(19), reg(8), reg(9));
    a.li(mask32, 0xffff_ffffu32 as i64);
    a.li(counter(), input.iters(30)); // blocks
    a.label("block");
    // Message schedule: w[16..64] = rotl1(w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16]).
    a.li(reg(20), (DATA + 64) as i64);
    a.li(reg(28), 48);
    a.label("sched");
    a.ldl(x, -12, reg(20));
    a.ldl(t, -32, reg(20));
    a.xor(x, t, x);
    a.ldl(t, -56, reg(20));
    a.xor(x, t, x);
    a.ldl(t, -64, reg(20));
    a.xor(x, t, x);
    a.and(x, mask32, x);
    a.sll(x, 1, t);
    a.srl(x, 31, u);
    a.bis(t, u, x);
    a.and(x, mask32, x);
    a.stl(x, 0, reg(20));
    a.lda(reg(20), 4, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "sched");
    // Compression: 64 rounds of a = rotl5(a) + f(b,c,d) + e + w[i] + K.
    a.li(va, 0x6745_2301);
    a.li(vb, 0xefcd_ab89u32 as i64);
    a.li(vc, 0x98ba_dcfeu32 as i64);
    a.li(vd, 0x1032_5476);
    a.li(ve, 0xc3d2_e1f0u32 as i64);
    a.li(reg(20), DATA as i64);
    a.li(reg(28), 64);
    a.label("round");
    a.sll(va, 5, t);
    a.srl(va, 27, u);
    a.bis(t, u, t);
    a.and(t, mask32, t);
    // f = (b & c) | (~b & d)
    a.and(vb, vc, x);
    a.bic(vd, vb, u);
    a.bis(x, u, x);
    a.addq(t, x, t);
    a.addq(t, ve, t);
    a.ldl(x, 0, reg(20));
    a.addq(t, x, t);
    a.lda(t, 0x7999, t);
    a.and(t, mask32, t);
    // Rotate the working registers.
    a.mov(vd, ve);
    a.mov(vc, vd);
    a.sll(vb, 30, x);
    a.srl(vb, 2, u);
    a.bis(x, u, vc);
    a.and(vc, mask32, vc);
    a.mov(va, vb);
    a.mov(t, va);
    a.lda(reg(20), 4, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "round");
    a.addq(acc(), va, acc());
    a.xor(acc(), ve, acc());
    // Feed the digest back into the message for the next block.
    a.li(reg(20), DATA as i64);
    a.stl(va, 0, reg(20));
    a.stl(ve, 4, reg(20));
    a.subq(counter(), 1, counter());
    a.bne(counter(), "block");
    epilogue(&mut a);
    (a.finish().expect("sha.rounds assembles"), mem)
}

/// `crc32` — table-driven CRC-32: the serial byte loop with an interior
/// load (`crc = table[(crc ^ b) & 0xff] ^ (crc >> 8)`).
pub fn crc32(input: &Input) -> (Program, Memory) {
    const LEN: u64 = 1024;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    fill_bytes(&mut mem, DATA, LEN, &mut r);
    // Standard CRC-32 (reflected, 0xedb88320) table.
    for n in 0..256u32 {
        let mut c = n;
        for _ in 0..8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
        }
        mem.write_u32(DATA3 + 4 * n as u64, c);
    }

    let mut a = Asm::new();
    let (b, idx, t, crc) = (reg(1), reg(2), reg(3), reg(17));
    a.li(counter(), input.iters(8));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(21), DATA3 as i64);
    a.li(crc, 0xffff_ffffu32 as i64);
    a.li(reg(28), LEN as i64);
    a.label("byte");
    a.ldbu(b, 0, reg(20));
    a.xor(crc, b, idx);
    a.and(idx, 0xff, idx);
    a.s4addq(idx, reg(21), t);
    a.ldl(t, 0, t);
    a.srl(crc, 8, crc);
    a.xor(crc, t, crc);
    a.zapnot(crc, 0x0f, crc);
    a.lda(reg(20), 1, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "byte");
    a.addq(acc(), crc, acc());
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("crc32 assembles"), mem)
}

/// `dijkstra` — rounds of edge relaxation over a dense adjacency matrix
/// (Bellman-Ford style, as MiBench's dijkstra over small graphs).
pub fn dijkstra(input: &Input) -> (Program, Memory) {
    const N: u64 = 48;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    // Adjacency weights 0 (no edge, 70%) or 1..16.
    for i in 0..N * N {
        let w: u8 = if r.gen_bool(0.3) { r.gen_range(1..16) } else { 0 };
        mem.write_u8(DATA + i, w);
    }
    // dist[] initialised to "infinity" except the source.
    for v in 0..N {
        mem.write_u32(DATA2 + 4 * v, if v == 0 { 0 } else { 1 << 20 });
    }

    let mut a = Asm::new();
    let (du, w, dv, nd, t, row) = (reg(1), reg(2), reg(3), reg(4), reg(5), reg(6));
    a.li(counter(), input.iters(2)); // relaxation rounds
    a.label("round");
    a.li(reg(22), 0); // u
    a.label("u_loop");
    a.li(reg(21), DATA2 as i64);
    a.s4addq(reg(22), reg(21), t);
    a.ldl(du, 0, t);
    // row pointer = DATA + u * N
    a.li(row, N as i64);
    a.mulq(reg(22), row, row);
    a.li(t, DATA as i64);
    a.addq(row, t, row);
    a.li(reg(23), 0); // v
    a.label("v_loop");
    a.addq(row, reg(23), t);
    a.ldbu(w, 0, t);
    a.beq(w, "no_edge");
    a.addq(du, w, nd);
    a.s4addq(reg(23), reg(21), t);
    a.ldl(dv, 0, t);
    a.cmplt(nd, dv, reg(7));
    a.beq(reg(7), "no_edge");
    a.stl(nd, 0, t);
    a.addq(acc(), 1, acc()); // count relaxations
    a.label("no_edge");
    a.addq(reg(23), 1, reg(23));
    a.cmplt(reg(23), N as i64, t);
    a.bne(t, "v_loop");
    a.addq(reg(22), 1, reg(22));
    a.cmplt(reg(22), N as i64, t);
    a.bne(t, "u_loop");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "round");
    // Fold final distances into the checksum.
    a.li(reg(21), DATA2 as i64);
    a.li(reg(28), N as i64);
    a.label("fold");
    a.ldl(t, 0, reg(21));
    a.addq(acc(), t, acc());
    a.lda(reg(21), 4, reg(21));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "fold");
    epilogue(&mut a);
    (a.finish().expect("dijkstra assembles"), mem)
}

/// `stringsearch` — substring scanning with a first-byte filter and a
/// word-wise confirmation compare.
pub fn stringsearch(input: &Input) -> (Program, Memory) {
    const LEN: u64 = 1024;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..LEN + 8 {
        mem.write_u8(DATA + i, r.gen_range(b'a'..=b'f'));
    }
    // Plant the needle a few times.
    let needle = *b"deadbeef";
    for _ in 0..6 {
        let at = r.gen_range(0..LEN - 8);
        mem.write_bytes(DATA + at, &needle);
    }

    let mut a = Asm::new();
    let (c, w, t) = (reg(1), reg(2), reg(3));
    let needle_word = i64::from_le_bytes(needle);
    a.li(reg(8), needle_word);
    a.and(reg(8), 0xff, reg(9)); // first byte
    a.li(counter(), input.iters(10));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(28), LEN as i64);
    a.label("scan");
    a.ldbu(c, 0, reg(20));
    a.cmpeq(c, reg(9), t);
    a.beq(t, "next");
    a.ldq(w, 0, reg(20));
    a.xor(w, reg(8), t);
    a.bne(t, "next");
    a.addq(acc(), 1, acc()); // match found
    a.label("next");
    a.lda(reg(20), 1, reg(20));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "scan");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("stringsearch assembles"), mem)
}

/// `rgba.conv` — RGBA-to-grayscale-and-repack pixel conversion: byte
/// extraction, weighted sums, and byte insertion (the `2rgba`-style
/// conversion kernels of MiBench/CommBench).
pub fn rgba_conv(input: &Input) -> (Program, Memory) {
    const PIXELS: u64 = 1024;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    for i in 0..PIXELS {
        mem.write_u32(DATA + 4 * i, r.gen());
    }

    let mut a = Asm::new();
    let (px, cr, cg, cb, gray, out) = (reg(1), reg(2), reg(3), reg(4), reg(5), reg(6));
    a.li(counter(), input.iters(16));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(21), DATA2 as i64);
    a.li(reg(28), PIXELS as i64);
    a.label("px");
    a.ldl(px, 0, reg(20));
    a.extbl(px, 0, cr);
    a.extbl(px, 1, cg);
    a.extbl(px, 2, cb);
    a.mull(cr, 77, cr);
    a.mull(cg, 150, cg);
    a.mull(cb, 29, cb);
    a.addq(cr, cg, gray);
    a.addq(gray, cb, gray);
    a.srl(gray, 8, gray);
    // Repack as gray in all three channels, alpha 255.
    a.sll(gray, 8, out);
    a.bis(out, gray, out);
    a.sll(out, 8, out);
    a.bis(out, gray, out);
    a.li(cr, 0xff00_0000u32 as i64);
    a.bis(out, cr, out);
    a.stl(out, 0, reg(21));
    a.addq(acc(), gray, acc());
    a.lda(reg(20), 4, reg(20));
    a.lda(reg(21), 4, reg(21));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "px");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("rgba.conv assembles"), mem)
}

/// `dither` — one-dimensional error-diffusion dithering with a
/// data-dependent threshold branch per pixel.
pub fn dither(input: &Input) -> (Program, Memory) {
    const PIXELS: u64 = 2048;
    let mut mem = Memory::new();
    let mut r = rng(input.seed);
    fill_bytes(&mut mem, DATA, PIXELS, &mut r);

    let mut a = Asm::new();
    let (px, err, t) = (reg(1), reg(17), reg(3));
    a.li(counter(), input.iters(2));
    a.label("outer");
    a.li(reg(20), DATA as i64);
    a.li(reg(21), DATA2 as i64);
    a.li(err, 0);
    a.li(reg(28), PIXELS as i64);
    a.label("pixel");
    a.ldbu(px, 0, reg(20));
    a.addq(px, err, px);
    a.cmplt(px, 128, t);
    a.bne(t, "dark");
    // Output white; error = value - 255.
    a.li(t, 255);
    a.stb(t, 0, reg(21));
    a.subq(px, 255, err);
    a.addq(acc(), 1, acc());
    a.br("prop");
    a.label("dark");
    a.stb(mg_isa::Reg::ZERO, 0, reg(21));
    a.mov(px, err);
    a.label("prop");
    // Propagate 7/16 of the error (shift-add approximation).
    a.mulq(err, 7, err);
    a.sra(err, 4, err);
    a.lda(reg(20), 1, reg(20));
    a.lda(reg(21), 1, reg(21));
    a.subq(reg(28), 1, reg(28));
    a.bne(reg(28), "pixel");
    a.subq(counter(), 1, counter());
    a.bne(counter(), "outer");
    epilogue(&mut a);
    (a.finish().expect("dither assembles"), mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::result;
    use mg_profile::run_program;

    fn runs(build: fn(&Input) -> (Program, Memory), input: &Input) -> u64 {
        let (p, mut mem) = build(input);
        run_program(&p, &mut mem, None, 50_000_000).expect("kernel halts");
        result(&mem)
    }

    #[test]
    fn all_mibench_kernels_run_and_are_deterministic() {
        for build in [bitcount, sha_rounds, crc32, dijkstra, stringsearch, rgba_conv, dither] {
            let a = runs(build, &Input::tiny());
            let b = runs(build, &Input::tiny());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bitcount_methods_agree() {
        // Both methods count the same words; the checksum is twice the
        // total popcount per pass.
        let (p, mut mem) = bitcount(&Input::tiny());
        let total: u64 = (0..64).map(|i| mem.read_u64(DATA + 8 * i).count_ones() as u64).sum();
        run_program(&p, &mut mem, None, 50_000_000).unwrap();
        let passes = Input::tiny().iters(10) as u64;
        assert_eq!(result(&mem), 2 * total * passes);
    }

    #[test]
    fn crc_matches_reference() {
        let (p, mut mem) = crc32(&Input::tiny());
        // Reference CRC-32 of the input bytes.
        let mut data = vec![0u8; 1024];
        mem.read_bytes(DATA, &mut data);
        let mut crc: u32 = 0xffff_ffff;
        for &b in &data {
            let idx = ((crc ^ b as u32) & 0xff) as u64;
            let t = mem.read_u32(DATA3 + 4 * idx);
            crc = t ^ (crc >> 8);
        }
        run_program(&p, &mut mem, None, 50_000_000).unwrap();
        let passes = Input::tiny().iters(8) as u64;
        assert_eq!(result(&mem), crc as u64 * passes);
    }

    #[test]
    fn stringsearch_finds_planted_needles() {
        let hits = runs(stringsearch, &Input::tiny());
        let passes = Input::tiny().iters(10) as u64;
        assert!(hits >= passes, "at least one needle per pass, got {hits}");
        assert_eq!(hits % passes, 0, "same count every pass");
    }
}
