//! Committed result checksums for every registered workload.
//!
//! Each kernel writes a 64-bit checksum to [`RESULT_ADDR`] before halting;
//! this table pins those values at two input points. It is the behavioural
//! contract behind two other mechanisms:
//!
//! * **Cache keys** — the persistent artifact cache folds
//!   [`mg_workloads::REGISTRY_VERSION`] into every key. Any change to a
//!   kernel's generated program or data changes these checksums, fails
//!   this test, and forces the version bump that invalidates stale cached
//!   selections/images/traces.
//! * **Rewrite equivalence** — `mg-uarch`'s end-to-end tests check that
//!   rewritten images compute the same results as baselines; the committed
//!   values here anchor "the same results" to concrete numbers.
//!
//! To regenerate after an intentional kernel change: run the test and
//! paste the `expected:` block it prints on failure, then bump
//! `REGISTRY_VERSION`.

use mg_isa::exec::{run_to_halt, CpuState};
use mg_workloads::common::RESULT_ADDR;
use mg_workloads::{all, Input};

/// Step budget per functional run — generous; every workload halts well
/// under it at the scales used here.
const STEP_BUDGET: u64 = 50_000_000;

/// The two pinned input points: the unit-test input and a larger scale of
/// the same seed (exercising the scale-dependent code paths).
fn inputs() -> [(&'static str, Input); 2] {
    [("tiny", Input::tiny()), ("tiny-x3", Input { seed: 7, scale: 3 })]
}

/// Committed checksums: (workload, checksum at tiny, checksum at tiny-x3).
const EXPECTED: &[(&str, u64, u64)] = &[
    // GENERATED TABLE — see module docs for how to regenerate.
    ("crafty.bits", 0x0000000000016184, 0x000000000009718c),
    ("gcc.expr", 0x0000000000039a18, 0x00000000000ace48),
    ("gzip.lz", 0x000000000000170d, 0x0000000000004527),
    ("mcf.netw", 0xffffffffffdba68e, 0xffffffffff92dc4a),
    ("parser.tok", 0x0000000000084488, 0x000000000018d148),
    ("twolf.place", 0x0000000000815dd8, 0x0000000001841988),
    ("adpcm.enc", 0xba68cbc203664521, 0xba68cbc203664521),
    ("adpcm.dec", 0xffffffffffe63a13, 0xffffffffffb2ae39),
    ("jpeg.dct", 0x0000000003984489, 0x0000007f38bf2270),
    ("mpeg2.idct", 0x00000000000fe4d8, 0x00000000002fae88),
    ("gsm.toast", 0x00000000000176b8, 0x0000000000046428),
    ("epic.filter", 0x0000000000bb170f, 0x000000000231452d),
    ("reed.enc", 0x00000001661ce6c4, 0x000000043256b44c),
    ("drr.sched", 0x0000000000287ac3, 0x00000000007a9089),
    ("frag.ip", 0x07b8000007ce2b10, 0x17280000176a8130),
    ("rtr.lookup", 0x000000000007ddd0, 0x0000000000179970),
    ("tcpdump.filt", 0x0000000000000024, 0x000000000000006c),
    ("bitcount", 0x0000000000009c2c, 0x000000000001d484),
    ("sha.rounds", 0x0000000c07655f83, 0x00000024f27b3426),
    ("crc32", 0x00000000c8535508, 0x0000000258f9ff18),
    ("dijkstra", 0x00000000000001ce, 0x00000000000001ce),
    ("stringsearch", 0x000000000000003c, 0x00000000000000b4),
    ("rgba.conv", 0x00000000001ff390, 0x00000000005fdab0),
    ("dither", 0x000000000000081c, 0x0000000000001854),
];

fn checksum(w: &mg_workloads::Workload, input: &Input) -> u64 {
    let (prog, mut mem) = w.build(input);
    let mut cpu = CpuState::new(prog.entry);
    run_to_halt(&prog, &mut cpu, &mut mem, None, STEP_BUDGET)
        .unwrap_or_else(|e| panic!("{} does not halt at {input:?}: {e:?}", w.name));
    mem.read_u64(RESULT_ADDR)
}

#[test]
fn every_workload_has_a_stable_committed_checksum() {
    let workloads = all();
    assert_eq!(
        workloads.len(),
        EXPECTED.len(),
        "checksum table covers every registered workload"
    );
    let mut actual: Vec<(String, u64, u64)> = Vec::new();
    for w in &workloads {
        let [(_, tiny), (_, big)] = inputs();
        actual.push((w.name.to_string(), checksum(w, &tiny), checksum(w, &big)));
    }
    let mut bad = Vec::new();
    for ((name, t, b), &(ename, et, eb)) in actual.iter().zip(EXPECTED) {
        assert_eq!(name, ename, "table order matches registration order");
        if (*t, *b) != (et, eb) {
            bad.push(name.clone());
        }
    }
    if !bad.is_empty() {
        eprintln!("checksum drift in: {bad:?}");
        eprintln!("expected:");
        for (name, t, b) in &actual {
            eprintln!("    (\"{name}\", 0x{t:016x}, 0x{b:016x}),");
        }
        panic!(
            "workload checksums changed — if intentional, paste the table above \
             and bump mg_workloads::REGISTRY_VERSION"
        );
    }
}

#[test]
fn checksums_differ_between_scales_for_most_workloads() {
    // Not a strict per-workload requirement, but if the two input points
    // collapsed to the same value everywhere the larger scale would be
    // exercising nothing.
    let distinct = EXPECTED.iter().filter(|(_, t, b)| t != b).count();
    assert!(distinct > EXPECTED.len() / 2, "only {distinct} workloads differ across scales");
}

#[test]
fn stable_ids_are_unique_and_versioned() {
    let ids: Vec<String> = all().iter().map(|w| w.stable_id()).collect();
    let mut dedup = ids.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), ids.len(), "stable ids are unique");
    for id in &ids {
        assert!(
            id.ends_with(&format!("@r{}", mg_workloads::REGISTRY_VERSION)),
            "{id} carries the registry version"
        );
    }
}
