//! Façade crate for the mini-graphs reproduction; re-exports every subsystem.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
pub use mg_api as api;
pub use mg_core as core;
pub use mg_dise as dise;
pub use mg_harness as harness;
pub use mg_isa as isa;
pub use mg_lang as lang;
pub use mg_policy as policy;
pub use mg_profile as profile;
pub use mg_uarch as uarch;
pub use mg_workloads as workloads;
