//! Differential obligations for the selection-policy lab:
//!
//! 1. the exact-DP baseline never scores below greedy — on certified
//!    blocks its objective is a per-block optimum, so greedy's gap is
//!    non-negative and DP's own gap is exactly zero, for every registry
//!    workload;
//! 2. every selector family's rewritten image is architecturally
//!    equivalent to the original program, in both rewrite styles
//!    (the `rewrite_equivalence.rs` obligation, extended to the new
//!    families).

use mini_graphs::core::{enumerate_candidates, rewrite, Policy, RewriteStyle, SelectInputs};
use mini_graphs::harness::ENUMERATION_SIZE;
use mini_graphs::isa::Memory;
use mini_graphs::policy::{all_selectors, DpCertifier};
use mini_graphs::profile::{build_cfg, profile_program, run_program};

/// Runs `prog` to halt from `mem` and returns the full-memory content
/// hash — the complete architectural result (registers are not compared:
/// the rewriter legally elides dead register writes).
fn memory_hash(
    prog: &mini_graphs::isa::Program,
    mem: &Memory,
    catalog: Option<&mini_graphs::isa::HandleCatalog>,
) -> u64 {
    let mut m = mem.clone();
    run_program(prog, &mut m, catalog, 200_000_000).expect("halts");
    m.content_hash()
}

/// The DP gauge certifies greedy from below and itself from above: for
/// every registry workload, greedy's objective never exceeds the exact
/// per-block optimum, and the DP selector achieves that optimum (gap 0)
/// on every certified block.
#[test]
fn dp_objective_dominates_greedy_on_every_registry_workload() {
    let input = mini_graphs::workloads::Input::tiny();
    let policy = Policy::integer_memory();
    let selectors = all_selectors();
    let greedy = selectors.iter().find(|s| s.id() == "greedy").expect("greedy registered");
    let dp = selectors.iter().find(|s| s.id() == "dp").expect("dp registered");

    let mut certified_anywhere = false;
    for wl in &mini_graphs::workloads::all() {
        let (prog, mut mem) = wl.build(&input);
        let cfg = build_cfg(&prog);
        let prof = profile_program(&prog, &mut mem, None, 200_000_000).expect("workload halts");
        let candidates = enumerate_candidates(&prog, &cfg, &prof, ENUMERATION_SIZE);
        let inputs = SelectInputs { candidates: &candidates, cfg: &cfg, prof: &prof };
        let certifier = DpCertifier::new(&inputs, &policy);
        certified_anywhere |= certifier.certified_blocks() > 0;

        let g = certifier.evaluate(&greedy.select(&inputs, &policy), &cfg);
        assert!(
            g.dp_objective >= g.family_objective,
            "{}: greedy objective {} exceeds the certified optimum {}",
            wl.name,
            g.family_objective,
            g.dp_objective
        );

        let d = certifier.evaluate(&dp.select(&inputs, &policy), &cfg);
        assert_eq!(d.gap(), 0, "{}: the DP selector left a gap against its own bound", wl.name);
        assert_eq!(d.certified_blocks, g.certified_blocks);
    }
    assert!(certified_anywhere, "the DP gauge certified no block at all");
}

/// Every selector family — not just the paper's greedy — produces
/// selections whose rewritten images reproduce the original memory
/// image bit for bit, in both rewrite styles.
#[test]
fn rewritten_images_are_equivalent_under_every_selector() {
    let input = mini_graphs::workloads::Input::tiny();
    let policy = Policy::integer_memory();
    let selectors = all_selectors();
    for wl in &mini_graphs::workloads::all() {
        let (prog, mem) = wl.build(&input);
        let baseline = memory_hash(&prog, &mem, None);
        let cfg = build_cfg(&prog);
        let prof = profile_program(&prog, &mut mem.clone(), None, 200_000_000)
            .expect("workload halts");
        let candidates = enumerate_candidates(&prog, &cfg, &prof, ENUMERATION_SIZE);
        let inputs = SelectInputs { candidates: &candidates, cfg: &cfg, prof: &prof };
        for s in &selectors {
            let sel = s.select(&inputs, &policy);
            for style in [RewriteStyle::NopPadded, RewriteStyle::Compressed] {
                let rw = rewrite(&prog, &sel, style);
                let got = memory_hash(&rw.program, &mem, Some(&sel.catalog));
                assert_eq!(
                    baseline,
                    got,
                    "{}: memory image diverged under {} ({style:?})",
                    wl.name,
                    s.id()
                );
            }
        }
    }
}
