//! Property-based correctness: rewriting a program with mini-graph handles
//! must never change its architectural behaviour.
//!
//! This is the central correctness obligation of the paper's binary
//! rewriter: collapsing a dataflow graph around its anchor (past
//! intervening non-member instructions) must preserve execution semantics.
//! We generate random straight-line-with-loops programs, extract and
//! select mini-graphs, rewrite (both nop-padded and compressed), execute
//! both images functionally, and require identical final register state
//! and memory results.

use mini_graphs::core::{extract, rewrite, Policy, RewriteStyle};
use mini_graphs::isa::{reg, Asm, Memory, Opcode, Program};
use mini_graphs::profile::run_program;
use proptest::prelude::*;

/// A random ALU/memory/branch operation for the generator.
#[derive(Clone, Debug)]
enum GenOp {
    Alu(Opcode, u8, u8, u8),
    AluImm(Opcode, u8, i8, u8),
    Load(u8, u8),
    Store(u8, u8),
}

fn alu_op() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Addq,
        Opcode::Subq,
        Opcode::And,
        Opcode::Bis,
        Opcode::Xor,
        Opcode::S4addq,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Cmplt,
        Opcode::Cmpeq,
        Opcode::Sextb,
        Opcode::Zapnot,
    ])
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        4 => (alu_op(), 1u8..12, 1u8..12, 1u8..12).prop_map(|(o, a, b, c)| GenOp::Alu(o, a, b, c)),
        4 => (alu_op(), 1u8..12, any::<i8>(), 1u8..12)
            .prop_map(|(o, a, i, c)| GenOp::AluImm(o, a, i, c)),
        1 => (1u8..12, 0u8..8).prop_map(|(c, s)| GenOp::Load(c, s)),
        1 => (1u8..12, 0u8..8).prop_map(|(d, s)| GenOp::Store(d, s)),
    ]
}

/// Builds a program: a prologue seeding r1..r11 with data-dependent
/// values, a loop whose body is the generated operation list, and an
/// epilogue storing every register to memory (so all values are observable
/// and liveness is exercised).
fn build_program(ops: &[GenOp], iters: i64) -> Program {
    let mut a = Asm::new();
    for i in 1..12u8 {
        a.li(reg(i), (i as i64) * 1047 + 13);
    }
    a.li(reg(20), 0x5000); // scratch memory base
    a.li(reg(30), iters);
    a.label("top");
    for op in ops {
        match *op {
            GenOp::Alu(o, x, y, z) => {
                // Shifts with huge values trivialize; mask via immediate form.
                a.push(mini_graphs::isa::Inst::op3(o, reg(x), reg(y), reg(z)));
            }
            GenOp::AluImm(o, x, i, z) => {
                a.push(mini_graphs::isa::Inst::op3(o, reg(x), i as i64, reg(z)));
            }
            GenOp::Load(c, s) => {
                a.ldq(reg(c), (s as i64) * 8, reg(20));
            }
            GenOp::Store(d, s) => {
                a.stq(reg(d), (s as i64) * 8, reg(20));
            }
        }
    }
    a.subq(reg(30), 1, reg(30));
    a.bne(reg(30), "top");
    // Observe everything.
    for i in 1..12u8 {
        a.stq(reg(i), 0x100 + (i as i64) * 8, reg(20));
    }
    a.halt();
    a.finish().expect("generated program assembles")
}

fn final_state(
    prog: &Program,
    catalog: Option<&mini_graphs::isa::HandleCatalog>,
) -> ([u64; 32], Vec<u64>) {
    let mut mem = Memory::new();
    let r = run_program(prog, &mut mem, catalog, 10_000_000).expect("halts");
    let mut observed = Vec::new();
    for i in 0..24u64 {
        observed.push(mem.read_u64(0x5000 + i * 8));
    }
    for i in 1..12u64 {
        observed.push(mem.read_u64(0x5000 + 0x100 + i * 8));
    }
    (r.cpu.regs, observed)
}

/// Runs `prog` to halt from `mem` and returns the full-memory content
/// hash — the complete architectural result. Final registers are not
/// compared here: the rewriter legally elides writes to registers that
/// are dead after a collapsed mini-graph.
fn memory_hash(
    prog: &Program,
    mem: &Memory,
    catalog: Option<&mini_graphs::isa::HandleCatalog>,
) -> u64 {
    let mut m = mem.clone();
    run_program(prog, &mut m, catalog, 200_000_000).expect("halts");
    m.content_hash()
}

/// Extracts, rewrites (both styles, both integer and integer+memory
/// policies), and requires the rewritten images to reproduce the
/// original memory image bit for bit.
fn assert_rewrite_equivalent(label: &str, prog: &Program, mem: &Memory) {
    let baseline = memory_hash(prog, mem, None);
    for policy in [Policy::integer(), Policy::integer_memory()] {
        let ex = extract(prog, &mut mem.clone(), &policy, 200_000_000)
            .unwrap_or_else(|e| panic!("{label}: extraction failed: {e:?}"));
        for style in [RewriteStyle::NopPadded, RewriteStyle::Compressed] {
            let rw = rewrite(prog, &ex.selection, style);
            let got = memory_hash(&rw.program, mem, Some(&ex.selection.catalog));
            assert_eq!(
                baseline, got,
                "{label}: memory image diverged after rewrite ({style:?})"
            );
        }
    }
}

/// Every workload in the registry is architecturally unchanged by
/// mini-graph rewriting, in both styles, under both standard policies.
#[test]
fn all_registry_workloads_rewrite_equivalently() {
    let input = mini_graphs::workloads::Input::tiny();
    let workloads = mini_graphs::workloads::all();
    assert!(!workloads.is_empty());
    for wl in &workloads {
        let (prog, mem) = wl.build(&input);
        assert_rewrite_equivalent(&format!("workload {}", wl.name), &prog, &mem);
    }
}

/// Every compiled mg-lang corpus program is architecturally unchanged by
/// mini-graph rewriting — the same harness, driven by compiler output
/// rather than hand-written kernels. Programs with procedure calls store
/// return addresses (instruction indices) into their spill slots, and
/// indices shift under compression, so this compares the language-level
/// observables (checksum, output stream, globals, arrays) rather than a
/// whole-memory hash.
#[test]
fn compiled_corpus_programs_rewrite_equivalently() {
    use mini_graphs::lang::codegen::observe;

    let input = mini_graphs::workloads::Input::tiny();
    let corpus = mini_graphs::lang::corpus::all();
    assert!(!corpus.is_empty());
    for (name, src) in corpus {
        let module = mini_graphs::lang::parser::parse(src).expect("corpus parses");
        let compiled = mini_graphs::lang::compile_source(src, &input)
            .unwrap_or_else(|e| panic!("corpus {name}: {e}"));
        let prog = &compiled.program;

        let mut mem = compiled.memory();
        run_program(prog, &mut mem, None, 200_000_000).expect("halts");
        let baseline = observe(&module, &mem);

        for policy in [Policy::integer(), Policy::integer_memory()] {
            let ex = extract(prog, &mut compiled.memory(), &policy, 200_000_000)
                .unwrap_or_else(|e| panic!("corpus {name}: extraction failed: {e:?}"));
            for style in [RewriteStyle::NopPadded, RewriteStyle::Compressed] {
                let rw = rewrite(prog, &ex.selection, style);
                let mut mem = compiled.memory();
                run_program(&rw.program, &mut mem, Some(&ex.selection.catalog), 200_000_000)
                    .expect("rewritten image halts");
                assert_eq!(
                    baseline,
                    observe(&module, &mem),
                    "corpus {name}: observables diverged after rewrite ({style:?}, {policy:?})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rewritten_images_are_architecturally_equivalent(
        ops in prop::collection::vec(gen_op(), 4..24),
        iters in 2i64..20,
        memory in prop::bool::ANY,
    ) {
        let prog = build_program(&ops, iters);
        let policy = if memory { Policy::integer_memory() } else { Policy::integer() };
        let ex = extract(&prog, &mut Memory::new(), &policy, 10_000_000).expect("profiles");
        let (orig_regs, orig_mem) = final_state(&prog, None);

        for style in [RewriteStyle::NopPadded, RewriteStyle::Compressed] {
            let rw = rewrite(&prog, &ex.selection, style);
            let (regs, mem) = final_state(&rw.program, Some(&ex.selection.catalog));
            prop_assert_eq!(orig_regs, regs, "register state diverged ({:?})", style);
            prop_assert_eq!(&orig_mem, &mem, "memory state diverged ({:?})", style);
        }
    }

    #[test]
    fn selection_members_never_overlap_and_respect_capacity(
        ops in prop::collection::vec(gen_op(), 4..24),
        capacity in 1usize..8,
    ) {
        let prog = build_program(&ops, 5);
        let policy = Policy::integer_memory().with_capacity(capacity);
        let ex = extract(&prog, &mut Memory::new(), &policy, 10_000_000).expect("profiles");
        prop_assert!(ex.selection.catalog.len() <= capacity);
        let mut seen = std::collections::HashSet::new();
        for c in &ex.selection.chosen {
            prop_assert!(c.graph.size() >= 2);
            prop_assert!(c.graph.size() <= policy.max_size);
            prop_assert!(c.graph.inputs.len() <= 2, "interface: at most 2 inputs");
            for &m in &c.graph.members {
                prop_assert!(seen.insert(m), "instruction {} in two mini-graphs", m);
            }
        }
    }

    #[test]
    fn enumerated_candidates_satisfy_interface_rules(
        ops in prop::collection::vec(gen_op(), 4..20),
    ) {
        let prog = build_program(&ops, 3);
        let ex = extract(&prog, &mut Memory::new(), &Policy::default(), 10_000_000)
            .expect("profiles");
        for c in &ex.candidates {
            prop_assert!(c.inputs.len() <= 2);
            let mems = c.template.ops.iter().filter(|o| o.op.class().is_mem()).count();
            prop_assert!(mems <= 1, "at most one memory operation");
            for (i, o) in c.template.ops.iter().enumerate() {
                if o.op.is_control() {
                    prop_assert_eq!(i + 1, c.template.ops.len(), "branches are terminal");
                }
            }
            // Connectivity: every op after the first consumes an interior
            // value or shares... (weaker check: M references are backwards)
            for (i, o) in c.template.ops.iter().enumerate() {
                for operand in [o.a, o.b] {
                    if let mini_graphs::isa::TmplOperand::M(k) = operand {
                        prop_assert!((k as usize) < i, "M references point backwards");
                    }
                }
            }
        }
    }
}
