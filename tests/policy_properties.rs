//! Shared selection-policy invariants (see `core/select.rs` docs):
//! every selector in the lab — greedy, loop-weighted greedy, tree
//! tiling, exact DP — must produce a [`Selection`] that is
//!
//! 1. **admissible**: every chosen instance passes `policy.admits`,
//! 2. **instance-disjoint**: no instruction belongs to two chosen
//!    mini-graphs,
//! 3. **catalog-consistent**: at most `policy.capacity` templates, and
//!    every chosen instance's `mgid` resolves to its own template.
//!
//! The generator is the same random program family as
//! `rewrite_equivalence.rs`; the invariants are checked for every
//! selector over the same inputs, so a new policy family cannot merge
//! without inheriting the obligations.

use mini_graphs::core::{enumerate_candidates, Policy, SelectInputs, Selection};
use mini_graphs::isa::{reg, Asm, Memory, Opcode, Program};
use mini_graphs::policy::all_selectors;
use mini_graphs::profile::{build_cfg, profile_program};
use proptest::prelude::*;

/// A random ALU operation for the generator.
#[derive(Clone, Debug)]
enum GenOp {
    Alu(Opcode, u8, u8, u8),
    AluImm(Opcode, u8, i8, u8),
    Load(u8, u8),
    Store(u8, u8),
}

fn alu_op() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Addq,
        Opcode::Subq,
        Opcode::And,
        Opcode::Bis,
        Opcode::Xor,
        Opcode::S4addq,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Cmplt,
        Opcode::Cmpeq,
    ])
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        4 => (alu_op(), 1u8..12, 1u8..12, 1u8..12).prop_map(|(o, a, b, c)| GenOp::Alu(o, a, b, c)),
        4 => (alu_op(), 1u8..12, any::<i8>(), 1u8..12)
            .prop_map(|(o, a, i, c)| GenOp::AluImm(o, a, i, c)),
        1 => (1u8..12, 0u8..8).prop_map(|(c, s)| GenOp::Load(c, s)),
        1 => (1u8..12, 0u8..8).prop_map(|(d, s)| GenOp::Store(d, s)),
    ]
}

/// A looped program over the generated body (same shape as the rewrite
/// equivalence generator: observable epilogue, data-dependent values).
fn build_program(ops: &[GenOp], iters: i64) -> Program {
    let mut a = Asm::new();
    for i in 1..12u8 {
        a.li(reg(i), (i as i64) * 1047 + 13);
    }
    a.li(reg(20), 0x5000);
    a.li(reg(30), iters);
    a.label("top");
    for op in ops {
        match *op {
            GenOp::Alu(o, x, y, z) => {
                a.push(mini_graphs::isa::Inst::op3(o, reg(x), reg(y), reg(z)));
            }
            GenOp::AluImm(o, x, i, z) => {
                a.push(mini_graphs::isa::Inst::op3(o, reg(x), i as i64, reg(z)));
            }
            GenOp::Load(c, s) => {
                a.ldq(reg(c), (s as i64) * 8, reg(20));
            }
            GenOp::Store(d, s) => {
                a.stq(reg(d), (s as i64) * 8, reg(20));
            }
        }
    }
    a.subq(reg(30), 1, reg(30));
    a.bne(reg(30), "top");
    a.halt();
    a.finish().expect("generated program assembles")
}

/// Asserts the three shared invariants for one selection.
fn assert_selection_invariants(label: &str, sel: &Selection, policy: &Policy) {
    assert!(
        sel.catalog.len() <= policy.capacity,
        "{label}: catalog {} exceeds capacity {}",
        sel.catalog.len(),
        policy.capacity
    );
    let mut seen = std::collections::HashSet::new();
    for c in &sel.chosen {
        assert!(policy.admits(&c.graph), "{label}: inadmissible instance chosen");
        for &m in &c.graph.members {
            assert!(seen.insert(m), "{label}: instruction {m} in two mini-graphs");
        }
        let template = sel
            .catalog
            .get(c.mgid)
            .unwrap_or_else(|| panic!("{label}: mgid {} outside the catalog", c.mgid));
        assert_eq!(
            template, &c.graph.template,
            "{label}: chosen instance's mgid maps to a different template"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every selector family upholds the `Selection` invariants on
    /// random programs, across policies and capacities.
    #[test]
    fn every_selector_upholds_the_selection_invariants(
        ops in prop::collection::vec(gen_op(), 4..24),
        capacity in 1usize..8,
        memory in prop::bool::ANY,
    ) {
        let prog = build_program(&ops, 5);
        let cfg = build_cfg(&prog);
        let prof = profile_program(&prog, &mut Memory::new(), None, 1_000_000)
            .expect("generated program halts");
        let candidates = enumerate_candidates(&prog, &cfg, &prof, 8);
        let base = if memory { Policy::integer_memory() } else { Policy::integer() };
        let policy = base.with_capacity(capacity);
        let inputs = SelectInputs { candidates: &candidates, cfg: &cfg, prof: &prof };
        for s in all_selectors() {
            let sel = s.select(&inputs, &policy);
            assert_selection_invariants(s.id(), &sel, &policy);
        }
    }
}

/// The invariants also hold for every registry workload (real kernels,
/// real profiles) under the standard policies.
#[test]
fn every_selector_upholds_the_invariants_on_registry_workloads() {
    let input = mini_graphs::workloads::Input::tiny();
    for wl in &mini_graphs::workloads::all() {
        let (prog, mut mem) = wl.build(&input);
        let cfg = build_cfg(&prog);
        let prof = profile_program(&prog, &mut mem, None, 200_000_000)
            .expect("registry workload halts");
        let candidates = enumerate_candidates(&prog, &cfg, &prof, 8);
        let inputs = SelectInputs { candidates: &candidates, cfg: &cfg, prof: &prof };
        for policy in [Policy::integer(), Policy::integer_memory()] {
            for s in all_selectors() {
                let sel = s.select(&inputs, &policy);
                assert_selection_invariants(&format!("{}/{}", wl.name, s.id()), &sel, &policy);
            }
        }
    }
}
