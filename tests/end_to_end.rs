//! Cross-crate integration tests: every registered workload runs through
//! the complete pipeline (profile → extract → rewrite → trace → timing
//! simulation) via the experiment harness, functional results stay
//! bit-identical, accounting identities hold, and the DISE expansion
//! fallback round-trips.

use mini_graphs::core::{Policy, RewriteStyle};
use mini_graphs::dise::expansion_engine;
use mini_graphs::harness::{Engine, Prep, Run};
use mini_graphs::isa::reg;
use mini_graphs::profile::run_program;
use mini_graphs::uarch::SimConfig;
use mini_graphs::workloads::{all, by_name, Input};

const RESULT_ADDR: u64 = 0x8000;

/// Every workload: the rewritten (nop-padded and compressed) images must
/// produce the same checksum as the original.
#[test]
fn all_workloads_rewrite_equivalently() {
    for w in all() {
        let input = Input::tiny();
        let prep = Prep::new(&w, &input);
        let policy = Policy::integer_memory();

        let mut m0 = prep.fresh_memory();
        run_program(&prep.prog, &mut m0, None, 200_000_000).expect("original halts");
        let expected = m0.read_u64(RESULT_ADDR);

        for style in [RewriteStyle::NopPadded, RewriteStyle::Compressed] {
            let image = prep.image(&policy, style);
            let mut m1 = prep.fresh_memory();
            run_program(&image.program, &mut m1, Some(&image.catalog), 200_000_000)
                .unwrap_or_else(|e| panic!("{}: rewritten image failed: {e}", w.name));
            assert_eq!(
                m1.read_u64(RESULT_ADDR),
                expected,
                "{}: checksum diverged under {:?}",
                w.name,
                style
            );
        }
    }
}

/// The amplification identity: dynamic instructions represented by both
/// traces agree, and the handle image fetches exactly `saved_slots` fewer
/// operations.
#[test]
fn amplification_accounting_identity() {
    let w = by_name("gsm.toast").expect("registered");
    let prep = Prep::new(&w, &Input::tiny());
    let policy = Policy::integer_memory();
    let sel = prep.select(&policy);

    let base = prep.base_trace();
    let mg = prep.image(&policy, RewriteStyle::NopPadded);

    assert_eq!(base.insts, mg.trace.insts, "same original instruction stream");
    let fetched_saved = base.ops.len() as u64 - mg.trace.ops.len() as u64;
    assert_eq!(
        fetched_saved,
        sel.saved_slots(),
        "pipeline slots saved must equal the selection's (n-1)·f estimate"
    );
}

/// Timing simulation is deterministic and the mini-graph machine commits
/// the same number of instructions as the baseline.
#[test]
fn timing_simulation_consistency() {
    let policy = Policy::integer_memory();
    let engine =
        Engine::builder().workloads(&["rgba.conv"]).input(Input::tiny()).quick(false).build();
    let runs = [
        Run::baseline(SimConfig::baseline()),
        Run::mini_graph(
            policy.clone(),
            RewriteStyle::NopPadded,
            SimConfig::mg_integer_memory(),
        ),
    ];

    let m1 = engine.run(&runs);
    let m2 = engine.run(&runs);
    let (b1, b2) = (&m1.rows[0].stats[0], &m2.rows[0].stats[0]);
    assert_eq!(b1.cycles, b2.cycles, "deterministic");

    let prep = &m1.rows[0].prep;
    let m = &m1.rows[0].stats[1];
    let saved = prep.select(&policy).saved_slots();
    assert_eq!(m.insts, b1.insts, "IPC numerators comparable");
    assert_eq!(m.ops + saved, b1.ops, "commit slots saved");
    assert!(m.handles > 0);
}

/// DISE fallback: expanding every handle of a rewritten workload image
/// back into singletons restores original behaviour (the "processor can
/// always expand a mini-graph it doesn't understand" path). Uses r24..r27
/// as the DISE register file — a workload whose kernels leave them dead.
#[test]
fn dise_expansion_fallback_round_trips() {
    let w = by_name("crc32").expect("registered");
    let prep = Prep::new(&w, &Input::tiny());
    let image = prep.image(&Policy::integer_memory(), RewriteStyle::NopPadded);

    let engine = expansion_engine(
        &image.catalog,
        vec![reg(24), reg(25), reg(26), reg(27), reg(19), reg(13), reg(14), reg(12)],
    );
    let expanded = engine.expand_image(&image.program).expect("expansion succeeds");

    let mut m0 = prep.fresh_memory();
    run_program(&prep.prog, &mut m0, None, 200_000_000).unwrap();
    let mut m1 = prep.fresh_memory();
    run_program(&expanded, &mut m1, None, 200_000_000).unwrap();
    assert_eq!(
        m0.read_u64(RESULT_ADDR),
        m1.read_u64(RESULT_ADDR),
        "expanded image recomputes the same checksum"
    );
}

/// Baseline IPCs span the paper's dynamic range: the suite contains both
/// memory-crawlers (mcf-like, IPC ≈ 0.3 or below) and high-ILP media
/// kernels (IPC ≥ 2.5).
#[test]
fn baseline_ipc_dynamic_range() {
    let mut cfg = SimConfig::baseline();
    cfg.max_ops = 25_000;
    let engine = Engine::builder()
        .workloads(&["mcf.netw", "crafty.bits"])
        .input(Input::tiny())
        .quick(false)
        .build();
    let matrix = engine.run(&[Run::baseline(cfg)]);
    let lo = matrix.row("mcf.netw").unwrap().stats[0].ipc();
    let hi = matrix.row("crafty.bits").unwrap().stats[0].ipc();
    assert!(lo < 0.4, "mcf-like crawls: {lo:.2}");
    assert!(hi > 2.5, "bit-twiddling flies: {hi:.2}");
}
