//! Cross-crate integration tests: every registered workload runs through
//! the complete pipeline (profile → extract → rewrite → trace → timing
//! simulation), functional results stay bit-identical, accounting
//! identities hold, and the DISE expansion fallback round-trips.

use mini_graphs::core::{extract, rewrite, Policy, RewriteStyle};
use mini_graphs::dise::expansion_engine;
use mini_graphs::isa::{reg, HandleCatalog, Memory};
use mini_graphs::profile::{record_trace, run_program};
use mini_graphs::uarch::{simulate, SimConfig};
use mini_graphs::workloads::{all, by_name, Input};

const RESULT_ADDR: u64 = 0x8000;

/// Every workload: the rewritten (nop-padded and compressed) images must
/// produce the same checksum as the original.
#[test]
fn all_workloads_rewrite_equivalently() {
    for w in all() {
        let input = Input::tiny();
        let (prog, _) = w.build(&input);
        let (_, mut pmem) = w.build(&input);
        let ex = extract(&prog, &mut pmem, &Policy::integer_memory(), 200_000_000)
            .unwrap_or_else(|e| panic!("{}: extraction failed: {e}", w.name));

        let (_, mut m0) = w.build(&input);
        run_program(&prog, &mut m0, None, 200_000_000).expect("original halts");
        let expected = m0.read_u64(RESULT_ADDR);

        for style in [RewriteStyle::NopPadded, RewriteStyle::Compressed] {
            let rw = rewrite(&prog, &ex.selection, style);
            let (_, mut m1) = w.build(&input);
            run_program(&rw.program, &mut m1, Some(&ex.selection.catalog), 200_000_000)
                .unwrap_or_else(|e| panic!("{}: rewritten image failed: {e}", w.name));
            assert_eq!(
                m1.read_u64(RESULT_ADDR),
                expected,
                "{}: checksum diverged under {:?}",
                w.name,
                style
            );
        }
    }
}

/// The amplification identity: dynamic instructions represented by both
/// traces agree, and the handle image fetches exactly `saved_slots` fewer
/// operations.
#[test]
fn amplification_accounting_identity() {
    let w = by_name("gsm.toast").expect("registered");
    let input = Input::tiny();
    let (prog, _) = w.build(&input);
    let (_, mut pmem) = w.build(&input);
    let ex = extract(&prog, &mut pmem, &Policy::integer_memory(), 200_000_000).unwrap();
    let rw = rewrite(&prog, &ex.selection, RewriteStyle::NopPadded);

    let (_, mut m1) = w.build(&input);
    let base = record_trace(&prog, &mut m1, None, 200_000_000).unwrap();
    let (_, mut m2) = w.build(&input);
    let mg = record_trace(&rw.program, &mut m2, Some(&ex.selection.catalog), 200_000_000)
        .unwrap();

    assert_eq!(base.insts, mg.insts, "same original instruction stream");
    let fetched_saved = base.ops.len() as u64 - mg.ops.len() as u64;
    assert_eq!(
        fetched_saved,
        ex.selection.saved_slots(),
        "pipeline slots saved must equal the selection's (n-1)·f estimate"
    );
}

/// Timing simulation is deterministic and the mini-graph machine commits
/// the same number of instructions as the baseline.
#[test]
fn timing_simulation_consistency() {
    let w = by_name("rgba.conv").expect("registered");
    let input = Input::tiny();
    let (prog, _) = w.build(&input);
    let (_, mut pmem) = w.build(&input);
    let ex = extract(&prog, &mut pmem, &Policy::integer_memory(), 200_000_000).unwrap();
    let rw = rewrite(&prog, &ex.selection, RewriteStyle::NopPadded);

    let (_, mut m1) = w.build(&input);
    let base_trace = record_trace(&prog, &mut m1, None, 200_000_000).unwrap();
    let (_, mut m2) = w.build(&input);
    let mg_trace =
        record_trace(&rw.program, &mut m2, Some(&ex.selection.catalog), 200_000_000).unwrap();

    let b1 = simulate(&SimConfig::baseline(), &prog, &base_trace, &HandleCatalog::new());
    let b2 = simulate(&SimConfig::baseline(), &prog, &base_trace, &HandleCatalog::new());
    assert_eq!(b1.cycles, b2.cycles, "deterministic");

    let m = simulate(
        &SimConfig::mg_integer_memory(),
        &rw.program,
        &mg_trace,
        &ex.selection.catalog,
    );
    assert_eq!(m.insts, b1.insts, "IPC numerators comparable");
    assert_eq!(m.ops + ex.selection.saved_slots(), b1.ops, "commit slots saved");
    assert!(m.handles > 0);
}

/// DISE fallback: expanding every handle of a rewritten workload image
/// back into singletons restores original behaviour (the "processor can
/// always expand a mini-graph it doesn't understand" path). Uses r24..r27
/// as the DISE register file — a workload whose kernels leave them dead.
#[test]
fn dise_expansion_fallback_round_trips() {
    let w = by_name("crc32").expect("registered");
    let input = Input::tiny();
    let (prog, _) = w.build(&input);
    let (_, mut pmem) = w.build(&input);
    // Integer graphs only: interior values are pure ALU temporaries.
    let ex = extract(&prog, &mut pmem, &Policy::integer_memory(), 200_000_000).unwrap();
    let rw = rewrite(&prog, &ex.selection, RewriteStyle::NopPadded);

    let engine = expansion_engine(
        &ex.selection.catalog,
        vec![reg(24), reg(25), reg(26), reg(27), reg(19), reg(13), reg(14), reg(12)],
    );
    let expanded = engine.expand_image(&rw.program).expect("expansion succeeds");

    let (_, mut m0) = w.build(&input);
    run_program(&prog, &mut m0, None, 200_000_000).unwrap();
    let (_, mut m1) = w.build(&input);
    run_program(&expanded, &mut m1, None, 200_000_000).unwrap();
    assert_eq!(
        m0.read_u64(RESULT_ADDR),
        m1.read_u64(RESULT_ADDR),
        "expanded image recomputes the same checksum"
    );
}

/// Baseline IPCs span the paper's dynamic range: the suite contains both
/// memory-crawlers (mcf-like, IPC ≈ 0.3 or below) and high-ILP media
/// kernels (IPC ≥ 2.5).
#[test]
fn baseline_ipc_dynamic_range() {
    let mut cfg = SimConfig::baseline();
    cfg.max_ops = 25_000;

    let lo = {
        let w = by_name("mcf.netw").unwrap();
        let (prog, _) = w.build(&Input::tiny());
        let (_, mut m) = w.build(&Input::tiny());
        let t = record_trace(&prog, &mut m, None, 200_000_000).unwrap();
        simulate(&cfg, &prog, &t, &HandleCatalog::new()).ipc()
    };
    let hi = {
        let w = by_name("crafty.bits").unwrap();
        let (prog, _) = w.build(&Input::tiny());
        let (_, mut m) = w.build(&Input::tiny());
        let t = record_trace(&prog, &mut m, None, 200_000_000).unwrap();
        simulate(&cfg, &prog, &t, &HandleCatalog::new()).ipc()
    };
    assert!(lo < 0.4, "mcf-like crawls: {lo:.2}");
    assert!(hi > 2.5, "bit-twiddling flies: {hi:.2}");
}
