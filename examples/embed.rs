//! A minimal **external consumer** of the embeddable session API.
//!
//! This is what an out-of-tree crate does to drive the pipeline: build
//! a [`Session`], register a custom workload through the
//! [`WorkloadSource`] trait (no registry fork), run one experiment, and
//! read structured results — using only the facade's public API and
//! typed [`MgError`] failures. CI runs it
//! (`cargo run --release --example embed`).
//!
//! ```sh
//! cargo run --release --example embed
//! ```

use mini_graphs::api::{
    CellSpec, InputSelector, MgError, NamedPolicy, PolicySelector, RunSpec, Session,
    WorkloadSource,
};
use mini_graphs::core::{Policy, RewriteStyle};
use mini_graphs::isa::{reg, Asm, Memory, Program};
use mini_graphs::uarch::SimConfig;
use mini_graphs::workloads::{Input, Suite};
use std::sync::Arc;

/// A toy out-of-tree workload: a checksum loop over a small table,
/// scaled by the input. Its dependent add/xor/shift chains are exactly
/// the fuseable patterns mini-graphs collapse.
struct ToyChecksum;

impl WorkloadSource for ToyChecksum {
    fn name(&self) -> &str {
        "toy.checksum"
    }

    fn suite(&self) -> Suite {
        Suite::MiBench
    }

    fn stable_id(&self) -> String {
        // Bump the revision whenever the generated program or data
        // changes: this id keys the warm-prep pool and artifact cache.
        "custom/toy.checksum@r1".into()
    }

    fn build(&self, input: &Input) -> Result<(Program, Memory), MgError> {
        let mut a = Asm::new();
        let (acc, i, n, base, v, t) = (reg(1), reg(2), reg(3), reg(4), reg(5), reg(6));
        a.li(acc, 0x5eed);
        a.li(i, 0);
        a.li(n, input.iters(64));
        a.li(base, 0x4000);
        a.label("loop");
        // A serial add → xor → shift-mask chain: prime fusion material.
        a.addq(i, base, t);
        a.ldq(v, 0, t);
        a.xor(acc, v, acc);
        a.sll(acc, 3, t);
        a.srl(acc, 61, acc);
        a.bis(acc, t, acc);
        a.addq(i, 8, i);
        a.cmplt(i, n, t);
        a.bne(t, "loop");
        a.stq(acc, 0, base);
        a.halt();
        let prog =
            a.finish().map_err(|e| MgError::parse(format!("toy workload assembles: {e}")))?;
        let mut mem = Memory::new();
        for k in 0..input.iters(64) {
            mem.write_u64(0x4000 + 8 * k as u64, (k as u64).wrapping_mul(0x9e37_79b9));
        }
        Ok((prog, mem))
    }
}

fn main() -> Result<(), MgError> {
    // A session: quick mode keeps this a seconds-long demo; the default
    // hermetic configuration (no persistent cache) suits a library host.
    let session = Session::builder()
        .quick(true)
        .register_workload(Arc::new(ToyChecksum))
        .register_policy(Arc::new(NamedPolicy::new(
            "small-int",
            Policy::integer().with_max_size(3),
        )))
        .build();

    // One experiment: the toy workload next to a registry kernel,
    // baseline vs two mini-graph machines (one via the registered
    // policy preset, one built-in).
    let spec = RunSpec::new()
        .workloads(["toy.checksum", "crc32"])
        .input(InputSelector::Named("reference".into()))
        .cell(CellSpec::baseline(SimConfig::baseline()))
        .cell(
            CellSpec::mini_graph(
                PolicySelector::Named("small-int".into()),
                RewriteStyle::NopPadded,
                SimConfig::mg_integer(),
            )
            .label("small-int"),
        )
        .cell(
            CellSpec::mini_graph(
                PolicySelector::Named("integer_memory".into()),
                RewriteStyle::NopPadded,
                SimConfig::mg_integer_memory(),
            )
            .label("intmem"),
        );
    let outcome = session.run(&spec)?;

    println!("workload       cells={:?}", outcome.labels);
    for row in &outcome.rows {
        println!(
            "{:<14} baseIPC {:.2}  small-int {:.3}x  intmem {:.3}x",
            row.workload,
            row.stats[0].ipc(),
            row.speedup_over(0, 1),
            row.speedup_over(0, 2),
        );
    }

    // Typed failure, not a panic: an unknown workload is an InvalidSpec
    // error an embedder can branch on (and the CLI maps to exit 64).
    let bad =
        RunSpec::new().workloads(["nonesuch"]).cell(CellSpec::baseline(SimConfig::baseline()));
    match session.run(&bad) {
        Err(e) => println!("typed error, as expected: [{}] {e}", e.kind()),
        Ok(_) => unreachable!("nonesuch is not a workload"),
    }
    Ok(())
}
