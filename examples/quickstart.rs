//! Quickstart: the complete mini-graph flow on the paper's own example.
//!
//! Builds a small program containing the paper's Figure 1 idiom
//! (`addl r18,2,r18 ; cmplt r18,r5,r7 ; bne r7,…`), registers it as an
//! ad-hoc program with the experiment engine, prints the MGT content
//! (MGHT headers and MGST banks), rewrites the binary with handles, and
//! compares baseline vs mini-graph cycle counts on the paper's 6-wide
//! machine.
//!
//! Run with: `cargo run --release --example quickstart`

use mini_graphs::core::{build_schedule, Policy, RewriteStyle};
use mini_graphs::harness::{Engine, Run};
use mini_graphs::isa::{reg, Asm, Memory, Program};
use mini_graphs::uarch::SimConfig;
use mini_graphs::workloads::Suite;

/// A loop built around the paper's Figure 1 (left) mini-graph.
fn figure1_program() -> Program {
    let mut a = Asm::new();
    a.li(reg(18), 0);
    a.li(reg(5), 60_000);
    a.li(reg(16), 0x2000);
    a.label("loop");
    a.addl(reg(18), 2, reg(18)); // mini-graph member
    a.lda(reg(6), 2, reg(6));
    a.s8addl(reg(7), reg(0), reg(7));
    a.cmplt(reg(18), reg(5), reg(7)); // mini-graph member
    a.bne(reg(7), "loop"); // mini-graph member (anchor)
    a.stq(reg(18), 0, reg(16));
    a.halt();
    a.finish().expect("example assembles")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Prepare: profile + enumerate via the engine; select greedily
    //    (512-entry MGT, max size 4 — the paper's headline point).
    let policy = Policy::default();
    let engine = Engine::builder()
        .program("figure1", Suite::SpecInt, |_| (figure1_program(), Memory::new()))
        .build();
    let prep = engine.prep("figure1").expect("registered above");
    let selection = prep.select(&policy);
    println!("candidates enumerated : {}", prep.candidates.len());
    println!("templates selected    : {}", selection.catalog.len());
    println!(
        "estimated coverage    : {:.1}% of {} dynamic instructions",
        100.0 * selection.coverage(prep.total_dyn),
        prep.total_dyn
    );

    // 2. Inspect the MGT: headers and sequencing banks.
    println!("\nMGT contents:");
    for (mgid, template) in selection.catalog.iter() {
        let sched = build_schedule(template, &SimConfig::mg_integer().mgt_config());
        println!(
            "  MGID {mgid}: {} (LAT {:?}, FU0 {}, total {} cycles)",
            template, sched.out_latency, sched.fu0, sched.total_latency
        );
        for line in sched.banks(template).lines() {
            println!("    {line}");
        }
    }

    // 3. Rewrite: handles at anchors, pads elsewhere.
    let image = prep.image(&policy, RewriteStyle::NopPadded);
    println!("\nrewritten image plants {} handle(s):", selection.chosen.len());
    for line in image.program.listing().lines() {
        println!("  {line}");
    }

    // 4. Cycle-level comparison: baseline vs mini-graph machine.
    let matrix = engine.run(&[
        Run::baseline(SimConfig::baseline()),
        Run::mini_graph(policy, RewriteStyle::NopPadded, SimConfig::mg_integer_memory()),
    ]);
    let row = &matrix.rows[0];
    let (base, mg) = (&row.stats[0], &row.stats[1]);
    println!("\nbaseline : {} cycles, IPC {:.2}", base.cycles, base.ipc());
    println!("mini-graph: {} cycles, IPC {:.2}", mg.cycles, mg.ipc());
    println!("speedup   : {:.3}x", base.cycles as f64 / mg.cycles as f64);
    Ok(())
}
