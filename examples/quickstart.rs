//! Quickstart: the complete mini-graph flow on the paper's own example.
//!
//! Builds a small program containing the paper's Figure 1 idiom
//! (`addl r18,2,r18 ; cmplt r18,r5,r7 ; bne r7,…`), extracts mini-graphs
//! from a basic-block frequency profile, prints the MGT content (MGHT
//! headers and MGST banks), rewrites the binary with handles, and compares
//! baseline vs mini-graph cycle counts on the paper's 6-wide machine.
//!
//! Run with: `cargo run --release --example quickstart`

use mini_graphs::core::{build_schedule, extract, rewrite, Policy, RewriteStyle};
use mini_graphs::isa::{reg, Asm, HandleCatalog, Memory};
use mini_graphs::profile::record_trace;
use mini_graphs::uarch::{simulate, SimConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop built around the paper's Figure 1 (left) mini-graph.
    let mut a = Asm::new();
    a.li(reg(18), 0);
    a.li(reg(5), 60_000);
    a.li(reg(16), 0x2000);
    a.label("loop");
    a.addl(reg(18), 2, reg(18)); // mini-graph member
    a.lda(reg(6), 2, reg(6));
    a.s8addl(reg(7), reg(0), reg(7));
    a.cmplt(reg(18), reg(5), reg(7)); // mini-graph member
    a.bne(reg(7), "loop"); // mini-graph member (anchor)
    a.stq(reg(18), 0, reg(16));
    a.halt();
    let prog = a.finish()?;

    // 1. Profile + enumerate + greedily select (512-entry MGT, max size 4).
    let ex = extract(&prog, &mut Memory::new(), &Policy::default(), 10_000_000)?;
    println!("candidates enumerated : {}", ex.candidates.len());
    println!("templates selected    : {}", ex.selection.catalog.len());
    println!(
        "estimated coverage    : {:.1}% of {} dynamic instructions",
        100.0 * ex.selection.coverage(ex.total_dyn_insts),
        ex.total_dyn_insts
    );

    // 2. Inspect the MGT: headers and sequencing banks.
    println!("\nMGT contents:");
    for (mgid, template) in ex.selection.catalog.iter() {
        let sched = build_schedule(template, &SimConfig::mg_integer().mgt_config());
        println!(
            "  MGID {mgid}: {} (LAT {:?}, FU0 {}, total {} cycles)",
            template,
            sched.out_latency,
            sched.fu0,
            sched.total_latency
        );
        for line in sched.banks(template).lines() {
            println!("    {line}");
        }
    }

    // 3. Rewrite: handles at anchors, pads elsewhere.
    let rw = rewrite(&prog, &ex.selection, RewriteStyle::NopPadded);
    println!("\nrewritten image plants {} handle(s):", rw.handles);
    for line in rw.program.listing().lines() {
        println!("  {line}");
    }

    // 4. Cycle-level comparison: baseline vs mini-graph machine.
    let base_trace = record_trace(&prog, &mut Memory::new(), None, 10_000_000)?;
    let mg_trace =
        record_trace(&rw.program, &mut Memory::new(), Some(&ex.selection.catalog), 10_000_000)?;
    let base = simulate(&SimConfig::baseline(), &prog, &base_trace, &HandleCatalog::new());
    let mg = simulate(
        &SimConfig::mg_integer_memory(),
        &rw.program,
        &mg_trace,
        &ex.selection.catalog,
    );
    println!("\nbaseline : {} cycles, IPC {:.2}", base.cycles, base.ipc());
    println!("mini-graph: {} cycles, IPC {:.2}", mg.cycles, mg.ipc());
    println!("speedup   : {:.3}x", base.cycles as f64 / mg.cycles as f64);
    Ok(())
}
