//! Custom application-specific mini-graphs via DISE (paper §5).
//!
//! Demonstrates the aware-utility flow: mini-graph definitions expressed
//! as DISE productions (`T.RS1`/`T.RS2`/`T.RD`/`$d` parameters), compiled
//! and validated by the mini-graph pre-processor (MGPP), tracked in the
//! mini-graph tag table (MGTT) — and the fallback path where a processor
//! that does not support a handle simply expands it back into singletons
//! with full architectural equivalence.
//!
//! Run with: `cargo run --release --example custom_dise`

use mini_graphs::core::{extract, rewrite, Policy, RewriteStyle};
use mini_graphs::dise::{expansion_engine, handle_production, mgpp, Mgtt, MgttDecision};
use mini_graphs::isa::{reg, Asm, Memory};
use mini_graphs::profile::run_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An application kernel with a couple of hot idioms.
    let mut a = Asm::new();
    a.li(reg(1), 0x4000);
    a.li(reg(30), 5_000);
    a.label("top");
    a.ldq(reg(2), 16, reg(1)); // the paper's mg-34 idiom
    a.srl(reg(2), 14, reg(17));
    a.and(reg(17), 1, reg(17));
    a.stq(reg(17), 64, reg(1));
    a.subq(reg(30), 1, reg(30));
    a.bne(reg(30), "top");
    a.halt();
    let prog = a.finish()?;

    // Extract mini-graphs and rewrite the executable with handles — the
    // binary-rewriter side of a DISE-aware toolchain.
    let ex = extract(&prog, &mut Memory::new(), &Policy::integer_memory(), 10_000_000)?;
    let rw = rewrite(&prog, &ex.selection, RewriteStyle::NopPadded);
    println!(
        "selected {} template(s), planted {} handle(s)",
        ex.selection.catalog.len(),
        rw.handles
    );

    // Express each template as the production the executable's `.dise`
    // section would carry, push it through the MGPP, and record the MGTT
    // verdicts.
    let mut mgtt = Mgtt::new(512);
    for (mgid, template) in ex.selection.catalog.iter() {
        let production = handle_production(mgid, template);
        mgtt.install(mgid);
        match mgpp::compile(&production.replacement) {
            Ok(row) => {
                mgtt.set_approved(mgid, true);
                println!("MGPP approved MGID {mgid}: {row}");
            }
            Err(why) => {
                mgtt.set_approved(mgid, false);
                println!("MGPP rejected MGID {mgid}: {why}");
            }
        }
    }
    for (mgid, _) in ex.selection.catalog.iter() {
        assert_eq!(mgtt.lookup(mgid), MgttDecision::KeepHandle);
    }

    // The portability path: a mini-graph-oblivious processor expands every
    // handle back into singletons. Architectural state must match the
    // original program exactly.
    let engine =
        expansion_engine(&ex.selection.catalog, vec![reg(24), reg(25), reg(26), reg(27)]);
    let expanded = engine.expand_image(&rw.program)?;
    println!(
        "\nexpanded image: {} instructions (handles restored to sequences)",
        expanded.len()
    );

    let mut m1 = Memory::new();
    let mut m2 = Memory::new();
    let orig = run_program(&prog, &mut m1, None, 50_000_000)?;
    let exp = run_program(&expanded, &mut m2, None, 50_000_000)?;
    assert_eq!(orig.cpu.regs, exp.cpu.regs, "expansion preserves architectural state");
    assert_eq!(m1.read_u64(0x4000 + 64), m2.read_u64(0x4000 + 64));
    println!("expanded image is architecturally equivalent to the original ✓");
    Ok(())
}
