//! Suite report: runs one workload from each of the paper's four suites
//! through the full pipeline and reports coverage, amplification, and
//! speedup — a miniature of the paper's Figure 6 row for each suite.
//!
//! Run with: `cargo run --release --example suite_report`

use mini_graphs::core::{Policy, RewriteStyle};
use mini_graphs::harness::{Engine, Run};
use mini_graphs::uarch::SimConfig;
use mini_graphs::workloads::Input;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policy = Policy::integer_memory();
    let engine = Engine::builder()
        .workloads(&["twolf.place", "adpcm.dec", "reed.enc", "bitcount"])
        .input(Input { seed: 0x5eed_0001, scale: 2 })
        .build();

    // Speedup over represented instructions: with max_ops truncation the
    // two runs cover different amounts of program, so compare IPC.
    let cap = |mut cfg: SimConfig| {
        cfg.max_ops = 60_000;
        cfg
    };
    let matrix = engine.run(&[
        Run::baseline(cap(SimConfig::baseline())),
        Run::mini_graph(
            policy.clone(),
            RewriteStyle::NopPadded,
            cap(SimConfig::mg_integer_memory()),
        ),
    ]);

    println!(
        "{:<14} {:>8} {:>7} {:>9} {:>9} {:>8}",
        "benchmark", "baseIPC", "cov%", "handles", "mgIPC", "speedup"
    );
    for row in &matrix.rows {
        let (base, mg) = (&row.stats[0], &row.stats[1]);
        let cov = row.prep.select(&policy).coverage(row.prep.total_dyn);
        println!(
            "{:<14} {:>8.2} {:>7.1} {:>9} {:>9.2} {:>7.3}x",
            row.prep.name,
            base.ipc(),
            100.0 * cov,
            mg.handles,
            mg.ipc(),
            mg.ipc() / base.ipc(),
        );
    }
    Ok(())
}
