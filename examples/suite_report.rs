//! Suite report: runs one workload from each of the paper's four suites
//! through the full pipeline and reports coverage, amplification, and
//! speedup — a miniature of the paper's Figure 6 row for each suite.
//!
//! Run with: `cargo run --release --example suite_report`

use mini_graphs::core::{extract, rewrite, Policy, RewriteStyle};
use mini_graphs::isa::HandleCatalog;
use mini_graphs::profile::record_trace;
use mini_graphs::uarch::{simulate, SimConfig};
use mini_graphs::workloads::{by_name, Input};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let picks = ["twolf.place", "adpcm.dec", "reed.enc", "bitcount"];
    println!(
        "{:<14} {:>8} {:>7} {:>9} {:>9} {:>8}",
        "benchmark", "baseIPC", "cov%", "handles", "mgIPC", "speedup"
    );
    for name in picks {
        let w = by_name(name).expect("workload registered");
        let input = Input { seed: 0x5eed_0001, scale: 2 };
        let (prog, _) = w.build(&input);

        // Extraction needs its own memory image (profiling mutates it).
        let (_, mut pmem) = w.build(&input);
        let ex = extract(&prog, &mut pmem, &Policy::integer_memory(), 200_000_000)?;
        let rw = rewrite(&prog, &ex.selection, RewriteStyle::NopPadded);

        let (_, mut m1) = w.build(&input);
        let base_trace = record_trace(&prog, &mut m1, None, 200_000_000)?;
        let (_, mut m2) = w.build(&input);
        let mg_trace =
            record_trace(&rw.program, &mut m2, Some(&ex.selection.catalog), 200_000_000)?;

        let mut cfg = SimConfig::baseline();
        cfg.max_ops = 60_000;
        let base = simulate(&cfg, &prog, &base_trace, &HandleCatalog::new());
        let mut mg_cfg = SimConfig::mg_integer_memory();
        mg_cfg.max_ops = 60_000;
        let mg = simulate(&mg_cfg, &rw.program, &mg_trace, &ex.selection.catalog);

        // Speedup over represented instructions: with max_ops truncation
        // the two runs cover different amounts of program, so compare IPC.
        println!(
            "{:<14} {:>8.2} {:>7.1} {:>9} {:>9.2} {:>7.3}x",
            name,
            base.ipc(),
            100.0 * ex.selection.coverage(ex.total_dyn_insts),
            mg.handles,
            mg.ipc(),
            mg.ipc() / base.ipc(),
        );
    }
    Ok(())
}
