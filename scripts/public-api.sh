#!/usr/bin/env sh
# Extracts the public item surface of the `mg_api` crate from its
# sources (a `cargo public-api`-style listing without the nightly
# toolchain): every `pub fn|struct|enum|trait|type|const|mod|use`
# declaration, joined across lines and cut at its body, one per line,
# prefixed with its file and sorted bytewise.
#
# The committed snapshot lives at `docs/api-surface.txt`; CI regenerates
# this listing and diffs the two, so an accidental breaking change to
# the embeddable API fails the build and an intentional one shows up in
# review as a snapshot edit (see docs/API.md, "Stability policy").
#
# Granularity: item declarations and full `pub fn` signatures. Enum
# variants, struct fields, and trait-method bodies are covered by their
# item's declaration line only; macro-generated items (e.g. the MgError
# per-kind constructors) are not expanded.
set -eu
cd "$(dirname "$0")/.."
LC_ALL=C
export LC_ALL

for f in $(printf '%s\n' crates/api/src/*.rs | sort); do
  awk -v file="$f" '
    # Public surface only: stop at the test module.
    /^[[:space:]]*#\[cfg\(test\)\]/ { exit }
    collecting {
      acc = acc " " $0
      if (finish(acc)) { collecting = 0 }
      next
    }
    /^[[:space:]]*pub (fn|struct|enum|trait|type|const|mod|use) / {
      acc = $0
      if (finish(acc)) { next } else { collecting = 1; next }
    }
    function finish(decl) {
      # `pub use` trees terminate at the semicolon (the braces carry the
      # re-exported names); everything else cuts at its body.
      if (decl ~ /^[[:space:]]*pub use/) {
        if (decl !~ /;/) return 0
        sub(/;.*$/, "", decl)
      } else {
        if (decl !~ /[{;=]/) return 0
        sub(/[[:space:]]*[{;=].*$/, "", decl)
      }
      gsub(/[[:space:]]+/, " ", decl)
      sub(/^ /, "", decl)
      sub(/ $/, "", decl)
      print file ": " decl
      return 1
    }
  ' "$f"
done | sort
